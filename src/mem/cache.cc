#include "mem/cache.hh"

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "common/trap.hh"

namespace mbavf
{

Cache::Cache(const CacheParams &params, MemLevel &next)
    : params_(params), next_(next),
      lines_(std::size_t(params.sets) * params.ways)
{
    if (!isPowerOfTwo(params.lineBytes) || params.lineBytes > 64)
        fatal(params.name, ": line size must be a power of two <= 64");
    if (!isPowerOfTwo(params.sets))
        fatal(params.name, ": set count must be a power of two");
    if (params.ways == 0)
        fatal(params.name, ": needs at least one way");
}

unsigned
Cache::setOf(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) %
                                 params_.sets);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / params_.sets;
}

Addr
Cache::lineAddrOf(Addr addr) const
{
    return addr / params_.lineBytes * params_.lineBytes;
}

int
Cache::findWay(unsigned set, Addr tag) const
{
    for (unsigned w = 0; w < params_.ways; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
Cache::victimWay(unsigned set) const
{
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (unsigned w = 0; w < params_.ways; ++w) {
        const Line &l = line(set, w);
        if (!l.valid)
            return w;
        if (l.lruStamp < oldest) {
            oldest = l.lruStamp;
            victim = w;
        }
    }
    return victim;
}

bool
Cache::probe(Addr addr) const
{
    return findWay(setOf(addr), tagOf(addr)) >= 0;
}

Cycle
Cache::access(const MemRequest &req, Cycle now)
{
    // Both checks are fault-reachable through a corrupted request
    // (address or size derived from flipped state), so they raise
    // recoverable traps, not panics.
    if (req.size == 0 || req.size > params_.lineBytes)
        simTrap(trapcode::cacheSize, params_.name,
                ": bad request size ", req.size);
    if (lineAddrOf(req.addr) != lineAddrOf(req.addr + req.size - 1))
        simTrap(trapcode::cacheStraddle, params_.name,
                ": request at ", req.addr, "+", req.size,
                " crosses a line boundary");

    const unsigned set = setOf(req.addr);
    const Addr tag = tagOf(req.addr);
    int way = findWay(set, tag);
    Cycle data_ready = now;

    if (way < 0) {
        ++stats_.misses;
        way = static_cast<int>(victimWay(set));
        Line &victim = line(set, way);
        Cycle t = now;
        if (victim.valid) {
            ++stats_.evictions;
            Addr victim_addr = (victim.tag * params_.sets + set) *
                params_.lineBytes;
            MBAVF_CHECK((victim.dirtyBytes &
                         ~lowMask(params_.lineBytes)) == 0,
                        params_.name,
                        ": dirty mask wider than the line");
            if (listener_) {
                listener_->onEvict(set, way, victim_addr,
                                   victim.dirtyBytes, t);
            }
            if (victim.dirtyBytes) {
                ++stats_.writebacks;
                MemRequest wb{victim_addr, params_.lineBytes,
                              MemCmd::Write, noDef};
                t = next_.access(wb, t);
            }
        }
        MemRequest fill{lineAddrOf(req.addr), params_.lineBytes,
                        MemCmd::Read, noDef};
        data_ready = next_.access(fill, t);
        victim.valid = true;
        victim.tag = tag;
        victim.dirtyBytes = 0;
        if (listener_) {
            listener_->onFill(set, way, lineAddrOf(req.addr),
                              data_ready);
        }
    } else {
        ++stats_.hits;
    }

    Line &l = line(set, way);
    l.lruStamp = ++lruCounter_;

    const Cycle done = data_ready + params_.hitLatency;
    const unsigned offset =
        static_cast<unsigned>(req.addr % params_.lineBytes);
    if (req.cmd == MemCmd::Write) {
        std::uint64_t mask = lowMask(req.size) << offset;
        l.dirtyBytes |= mask;
        if (listener_) {
            listener_->onWrite(set, way, req.addr, req.size,
                               data_ready, req.tag);
        }
    } else if (listener_) {
        listener_->onRead(set, way, req.addr, req.size, data_ready,
                          req.def);
    }
    return done;
}

void
Cache::flush(Cycle now)
{
    for (unsigned set = 0; set < params_.sets; ++set) {
        for (unsigned way = 0; way < params_.ways; ++way) {
            Line &l = line(set, way);
            if (!l.valid)
                continue;
            Addr line_addr =
                (l.tag * params_.sets + set) * params_.lineBytes;
            ++stats_.evictions;
            MBAVF_CHECK((l.dirtyBytes &
                         ~lowMask(params_.lineBytes)) == 0,
                        params_.name,
                        ": dirty mask wider than the line");
            if (listener_)
                listener_->onEvict(set, way, line_addr, l.dirtyBytes,
                                   now);
            if (l.dirtyBytes) {
                ++stats_.writebacks;
                MemRequest wb{line_addr, params_.lineBytes,
                              MemCmd::Write, noDef};
                next_.access(wb, now);
            }
            l.valid = false;
            l.dirtyBytes = 0;
        }
    }
}

} // namespace mbavf
