#include "mem/memory.hh"

#include "common/logging.hh"
#include "common/trap.hh"

namespace mbavf
{

MainMemory::MainMemory(std::uint64_t size_bytes)
    : data_(size_bytes, 0)
{
    // origins_ is allocated lazily on the first real provenance
    // write: fault-injection runs never track provenance, and the
    // array is large.
}

Addr
MainMemory::alloc(std::uint64_t bytes, std::uint64_t align)
{
    Addr base = (allocPtr_ + align - 1) / align * align;
    if (base + bytes > data_.size()) {
        fatal("MainMemory exhausted: need ", bytes, " at ", base,
              " of ", data_.size());
    }
    allocPtr_ = base + bytes;
    return base;
}

void
MainMemory::checkRange(Addr addr, unsigned size) const
{
    // Fault-reachable: a flipped address register can direct an
    // access anywhere. Trap instead of panicking so an injection
    // trial classifies Crash rather than aborting the process.
    if (addr + size > data_.size())
        simTrap(trapcode::memOob, "memory access out of range: ", addr,
                "+", size, " of ", data_.size());
}

std::uint8_t
MainMemory::read8(Addr addr) const
{
    checkRange(addr, 1);
    return data_[addr];
}

std::uint32_t
MainMemory::read32(Addr addr) const
{
    checkRange(addr, 4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= std::uint32_t(data_[addr + i]) << (8 * i);
    return v;
}

void
MainMemory::readBlock(Addr addr, std::uint64_t bytes,
                      std::vector<std::uint8_t> &out) const
{
    if (bytes == 0)
        return;
    if (addr + bytes > data_.size())
        simTrap(trapcode::memOob, "memory access out of range: ", addr,
                "+", bytes, " of ", data_.size());
    out.insert(out.end(), data_.begin() + addr,
               data_.begin() + addr + bytes);
}

void
MainMemory::write8(Addr addr, std::uint8_t value)
{
    checkRange(addr, 1);
    data_[addr] = value;
}

void
MainMemory::write32(Addr addr, std::uint32_t value)
{
    checkRange(addr, 4);
    for (unsigned i = 0; i < 4; ++i)
        data_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

ByteOrigin
MainMemory::origin(Addr addr) const
{
    checkRange(addr, 1);
    if (origins_.empty())
        return ByteOrigin{};
    return origins_[addr];
}

void
MainMemory::setOrigin(Addr addr, unsigned size, DefId def)
{
    checkRange(addr, size);
    if (origins_.empty()) {
        if (def == noDef)
            return; // default origin is already noDef
        origins_.resize(data_.size());
    }
    for (unsigned i = 0; i < size; ++i)
        origins_[addr + i] = {def, static_cast<std::uint8_t>(i)};
}

} // namespace mbavf
