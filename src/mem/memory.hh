/**
 * @file
 * Flat functional main memory.
 *
 * Holds the simulated system's data contents plus per-byte dataflow
 * provenance: which dynamic definition produced each byte and which
 * byte of that definition's 32-bit value it is. Caches model timing
 * and residency only; data always lives here, which keeps functional
 * execution and fault injection simple.
 */

#ifndef MBAVF_MEM_MEMORY_HH
#define MBAVF_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** Provenance of one memory byte. */
struct ByteOrigin
{
    DefId def = noDef;
    /** Which byte (0-3) of the producing 32-bit value this is. */
    std::uint8_t byteIdx = 0;
};

/** Flat byte-addressable memory with a bump allocator. */
class MainMemory
{
  public:
    explicit MainMemory(std::uint64_t size_bytes);

    std::uint64_t size() const { return data_.size(); }

    /** Allocate @p bytes aligned to @p align; fatal on exhaustion. */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 64);

    /** High-water mark of the bump allocator. */
    Addr allocatedBytes() const { return allocPtr_; }

    std::uint8_t read8(Addr addr) const;
    std::uint32_t read32(Addr addr) const;

    /** Bulk copy of [addr, addr+bytes) appended onto @p out. */
    void readBlock(Addr addr, std::uint64_t bytes,
                   std::vector<std::uint8_t> &out) const;

    void write8(Addr addr, std::uint8_t value);
    void write32(Addr addr, std::uint32_t value);

    /** Provenance of byte @p addr. */
    ByteOrigin origin(Addr addr) const;

    /** Record that @p size bytes at @p addr hold @p def's value. */
    void setOrigin(Addr addr, unsigned size, DefId def);

    /** Host store of a 32-bit value (no provenance). */
    void
    hostWrite32(Addr addr, std::uint32_t value)
    {
        write32(addr, value);
        setOrigin(addr, 4, noDef);
    }

  private:
    void checkRange(Addr addr, unsigned size) const;

    std::vector<std::uint8_t> data_;
    std::vector<ByteOrigin> origins_;
    Addr allocPtr_ = 0;
};

} // namespace mbavf

#endif // MBAVF_MEM_MEMORY_HH
