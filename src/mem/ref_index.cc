#include "mem/ref_index.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf
{

void
MemRefIndex::addLoad(Addr addr, unsigned size, Cycle t, DefId def)
{
    for (unsigned i = 0; i < size; ++i) {
        auto &list = refs_[addr + i];
        if (!list.empty() && list.back().time > t)
            panic("MemRefIndex loads out of time order");
        list.push_back({t, true, def, static_cast<std::uint8_t>(8 * i)});
    }
}

void
MemRefIndex::addStore(Addr addr, unsigned size, Cycle t)
{
    for (unsigned i = 0; i < size; ++i) {
        auto &list = refs_[addr + i];
        if (!list.empty() && list.back().time > t)
            panic("MemRefIndex stores out of time order");
        list.push_back({t, false, noDef, 0});
    }
}

const ByteRef *
MemRefIndex::firstAfter(Addr addr, Cycle t) const
{
    auto it = refs_.find(addr);
    if (it == refs_.end())
        return nullptr;
    const auto &list = it->second;
    auto ref = std::lower_bound(
        list.begin(), list.end(), t,
        [](const ByteRef &r, Cycle c) { return r.time < c; });
    return ref == list.end() ? nullptr : &*ref;
}

} // namespace mbavf
