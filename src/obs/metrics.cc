#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf::obs
{

namespace detail
{

std::atomic<bool> metricsEnabledFlag{false};

} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::metricsEnabledFlag.store(enabled,
                                     std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &c : counters_)
        if (c->name == name)
            return Counter(c.get());
    counters_.push_back(std::make_unique<detail::CounterCell>());
    counters_.back()->name = name;
    return Counter(counters_.back().get());
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &g : gauges_)
        if (g->name == name)
            return Gauge(g.get());
    gauges_.push_back(std::make_unique<detail::GaugeCell>());
    gauges_.back()->name = name;
    return Gauge(gauges_.back().get());
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           std::vector<std::uint64_t> bounds)
{
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        panic("histogram '", name, "' bounds must be ascending");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &h : histograms_) {
        if (h->name == name) {
            if (h->bounds != bounds) {
                panic("histogram '", name,
                      "' re-registered with different bounds");
            }
            return Histogram(h.get());
        }
    }
    histograms_.push_back(std::make_unique<detail::HistogramCell>());
    detail::HistogramCell &cell = *histograms_.back();
    cell.name = name;
    cell.bounds = std::move(bounds);
    cell.buckets =
        std::vector<detail::CounterCell>(cell.bounds.size() + 1);
    return Histogram(&cell);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &c : counters_)
            snap.counters.emplace_back(c->name, c->total());
        for (const auto &g : gauges_) {
            snap.gauges.emplace_back(
                g->name,
                g->value.load(std::memory_order_relaxed));
        }
        for (const auto &h : histograms_) {
            MetricsSnapshot::HistogramData data;
            data.name = h->name;
            data.bounds = h->bounds;
            for (const detail::CounterCell &b : h->buckets)
                data.counts.push_back(b.total());
            snap.histograms.push_back(std::move(data));
        }
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const auto &a, const auto &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &c : counters_)
        for (detail::Shard &s : c->shards)
            s.value.store(0, std::memory_order_relaxed);
    for (const auto &g : gauges_)
        g->value.store(0, std::memory_order_relaxed);
    for (const auto &h : histograms_)
        for (detail::CounterCell &b : h->buckets)
            for (detail::Shard &s : b.shards)
                s.value.store(0, std::memory_order_relaxed);
}

std::uint64_t
MetricsSnapshot::HistogramData::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

JsonValue
MetricsSnapshot::json() const
{
    JsonValue out = JsonValue::object();
    JsonValue cs = JsonValue::object();
    for (const auto &[name, value] : counters)
        cs.set(name, JsonValue(value));
    out.set("counters", std::move(cs));
    JsonValue gs = JsonValue::object();
    for (const auto &[name, value] : gauges)
        gs.set(name, JsonValue(value));
    out.set("gauges", std::move(gs));
    JsonValue hs = JsonValue::object();
    for (const HistogramData &h : histograms) {
        JsonValue entry = JsonValue::object();
        JsonValue bounds = JsonValue::array();
        for (std::uint64_t b : h.bounds)
            bounds.push(JsonValue(b));
        entry.set("bounds", std::move(bounds));
        JsonValue counts = JsonValue::array();
        for (std::uint64_t c : h.counts)
            counts.push(JsonValue(c));
        entry.set("counts", std::move(counts));
        entry.set("total", JsonValue(h.total()));
        hs.set(h.name, std::move(entry));
    }
    out.set("histograms", std::move(hs));
    return out;
}

} // namespace mbavf::obs
