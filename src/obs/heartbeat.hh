/**
 * @file
 * Periodic campaign heartbeat: a progress line with throughput, ETA,
 * and the running outcome tallies, emitted to stderr as trials
 * complete.
 *
 * Emission honors the campaign's --checkpoint-every boundaries: a
 * line prints exactly when the cumulative completed-trial count
 * crosses a multiple of the interval (so each heartbeat corresponds
 * to a journal flush point), plus one final line at the last trial.
 * A resumed campaign primes the heartbeat with the journaled prefix,
 * so the cumulative counts and percentages stay coherent with the
 * final tally — the rate/ETA meanwhile only measure the trials this
 * process actually ran.
 *
 * The outcome label set is passed in by the caller (the campaign CLI
 * passes injectOutcomeName() order) so obs stays independent of the
 * inject layer. record() is thread-safe; it is called from pool
 * workers via Campaign's on_trial callback.
 */

#ifndef MBAVF_OBS_HEARTBEAT_HH
#define MBAVF_OBS_HEARTBEAT_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mbavf::obs
{

/** See file comment. */
class Heartbeat
{
  public:
    /**
     * @param labels   outcome names; record() refers to them by index
     * @param total    total trials the campaign will complete
     * @param interval emit when the cumulative count crosses a
     *                 multiple of this (0 disables heartbeats)
     * @param os       sink (null disables output but keeps tallies)
     */
    Heartbeat(std::vector<std::string> labels, std::uint64_t total,
              std::uint64_t interval, std::ostream *os);

    /**
     * Seed the cumulative state with @p counts per label (resume
     * path). Counts sum to the number of already-completed trials.
     */
    void prime(const std::vector<std::uint64_t> &counts);

    /** One trial finished with outcome @p label_index. Thread-safe. */
    void record(std::size_t label_index);

    /** Emit a final line if the last trial wasn't on a boundary. */
    void finish();

    /** Cumulative count per label (tests). */
    std::vector<std::uint64_t> counts() const;

    /** Cumulative completed trials, including primed ones. */
    std::uint64_t completed() const;

    /** Lines emitted so far (tests). */
    std::uint64_t linesEmitted() const { return lines_; }

    /** Override the elapsed-seconds source (tests use a fake). */
    void setClock(std::function<double()> now_seconds);

  private:
    /** Compose and write one line. Caller holds the lock. */
    void emitLocked();

    std::vector<std::string> labels_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_;
    std::uint64_t interval_;
    std::ostream *os_;
    mutable std::mutex mutex_;
    std::uint64_t completed_ = 0; ///< includes primed trials
    std::uint64_t primed_ = 0;    ///< trials this process skipped
    std::uint64_t emittedAt_ = 0; ///< completed_ at the last line
    std::uint64_t lines_ = 0;
    std::function<double()> now_;
};

} // namespace mbavf::obs

#endif // MBAVF_OBS_HEARTBEAT_HH
