/**
 * @file
 * Build provenance: the one description of "which binary produced
 * this number" that --version flags print and every manifest embeds.
 *
 * The git hash, build type, flags, and sanitizer list are baked in
 * at configure time by src/obs/CMakeLists.txt; the compiler comes
 * from __VERSION__ and the MBAVF_CHECKS state from whether the
 * MBAVF_RUNTIME_CHECKS macro was defined. A tree configured outside
 * git reports "unknown" rather than failing.
 */

#ifndef MBAVF_OBS_BUILD_INFO_HH
#define MBAVF_OBS_BUILD_INFO_HH

#include <string>

#include "obs/json.hh"

namespace mbavf::obs
{

/** Static description of this binary's build. */
struct BuildInfo
{
    std::string gitHash;   ///< configure-time HEAD ("unknown" if none)
    std::string compiler;  ///< __VERSION__
    std::string buildType; ///< CMAKE_BUILD_TYPE
    std::string flags;     ///< CMAKE_CXX_FLAGS (may be empty)
    std::string sanitize;  ///< MBAVF_SANITIZE list (may be empty)
    bool runtimeChecks = false; ///< MBAVF_CHECKS compiled in
};

/** This binary's build description (computed once). */
const BuildInfo &buildInfo();

/** The manifest "build" section. */
JsonValue buildInfoJson();

/** One-line --version output for @p tool. */
std::string versionLine(const std::string &tool);

} // namespace mbavf::obs

#endif // MBAVF_OBS_BUILD_INFO_HH
