#include "obs/heartbeat.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/stopwatch.hh"

namespace mbavf::obs
{

Heartbeat::Heartbeat(std::vector<std::string> labels,
                     std::uint64_t total, std::uint64_t interval,
                     std::ostream *os)
    : labels_(std::move(labels)), counts_(labels_.size(), 0),
      total_(total), interval_(interval), os_(os)
{
    Stopwatch watch;
    now_ = [watch] { return watch.seconds(); };
}

void
Heartbeat::prime(const std::vector<std::uint64_t> &counts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counts.size() != counts_.size())
        panic("heartbeat primed with ", counts.size(),
              " labels, expected ", counts_.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts_[i] += counts[i];
        completed_ += counts[i];
        primed_ += counts[i];
    }
    emittedAt_ = completed_;
}

void
Heartbeat::record(std::size_t label_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (label_index >= counts_.size())
        panic("heartbeat outcome index ", label_index,
              " out of range");
    ++counts_[label_index];
    ++completed_;
    if (!interval_)
        return;
    // Crossing a multiple of the interval. Trials complete one at a
    // time under the lock, so "crossed" is simply "landed on".
    if (completed_ % interval_ == 0)
        emitLocked();
}

void
Heartbeat::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (interval_ && completed_ > emittedAt_)
        emitLocked();
}

std::vector<std::uint64_t>
Heartbeat::counts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

std::uint64_t
Heartbeat::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

void
Heartbeat::setClock(std::function<double()> now_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    now_ = std::move(now_seconds);
}

void
Heartbeat::emitLocked()
{
    emittedAt_ = completed_;
    if (!os_)
        return;
    ++lines_;
    const double elapsed = now_();
    const std::uint64_t ran = completed_ - primed_;
    const double rate = elapsed > 0
        ? static_cast<double>(ran) / elapsed
        : 0.0;
    const std::uint64_t left =
        total_ > completed_ ? total_ - completed_ : 0;
    const double pct = total_
        ? 100.0 * static_cast<double>(completed_) /
              static_cast<double>(total_)
        : 0.0;

    std::string line = "[heartbeat] ";
    line += std::to_string(completed_) + "/" +
            std::to_string(total_);
    line += " (" + formatFixed(pct, 1) + "%)";
    line += ", " + formatFixed(rate, 1) + " trials/s";
    if (rate > 0) {
        line += ", ETA " +
                formatFixed(static_cast<double>(left) / rate, 0) +
                "s";
    }
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        line += i == 0 ? " | " : " ";
        line += labels_[i] + "=" + std::to_string(counts_[i]);
    }
    *os_ << line << "\n";
    os_->flush();
}

} // namespace mbavf::obs
