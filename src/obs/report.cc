#include "obs/report.hh"

#include <algorithm>
#include <cmath>

#include "obs/manifest.hh"

namespace mbavf::obs
{

namespace
{

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Int:
      case JsonValue::Kind::Uint:
      case JsonValue::Kind::Double: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

bool
sameShapeKind(const JsonValue &a, const JsonValue &b)
{
    if (a.isNumber() && b.isNumber())
        return true;
    return a.kind() == b.kind();
}

/** Relative difference, symmetric, safe at zero. */
double
relDiff(double a, double b)
{
    if (a == b)
        return 0.0;
    double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) / scale;
}

/** {count, rate, ci_low, ci_high} objects get CI-overlap semantics. */
bool
isRateObject(const JsonValue &v)
{
    return v.isObject() && v.find("rate") && v.find("ci_low") &&
           v.find("ci_high");
}

struct Differ
{
    const DiffOptions &options;
    DiffResult result;

    void
    structural(const std::string &path, const std::string &what)
    {
        result.structuralMismatch = true;
        result.notes.push_back("structure: " + path + ": " + what);
    }

    void
    drift(const std::string &path, const std::string &what)
    {
        result.drifted = true;
        result.notes.push_back("drift: " + path + ": " + what);
    }

    void
    perf(const std::string &path, const std::string &what)
    {
        result.drifted = true;
        result.notes.push_back("perf: " + path + ": " + what);
    }

    /** Is this subtree perf/context data rather than results? */
    static bool
    timingPath(const std::string &path)
    {
        return path == "/phases" || path.rfind("/phases/", 0) == 0 ||
               path == "/env" || path.rfind("/env/", 0) == 0;
    }

    /**
     * A rate object carrying weight 0 at rate exactly 0 is a skipped
     * stratum's placeholder, not an estimate — the stratum
     * contributes nothing to the combined interval, so it is
     * compatible with any interval on the other side.
     */
    static bool
    zeroWeightRate(const JsonValue &v)
    {
        const JsonValue *weight = v.find("weight");
        return weight && weight->asDouble() == 0.0 &&
               v.find("rate")->asDouble() == 0.0;
    }

    void
    compareRate(const std::string &path, const JsonValue &a,
                const JsonValue &b)
    {
        if (zeroWeightRate(a) || zeroWeightRate(b))
            return;
        const double a_low = a.find("ci_low")->asDouble();
        const double a_high = a.find("ci_high")->asDouble();
        const double b_low = b.find("ci_low")->asDouble();
        const double b_high = b.find("ci_high")->asDouble();
        if (a_low > b_high || b_low > a_high) {
            drift(path, "rate CIs are disjoint ([" +
                            std::to_string(a_low) + ", " +
                            std::to_string(a_high) + "] vs [" +
                            std::to_string(b_low) + ", " +
                            std::to_string(b_high) + "])");
        }
    }

    void
    compare(const std::string &path, const JsonValue &a,
            const JsonValue &b)
    {
        if (!sameShapeKind(a, b)) {
            structural(path,
                       std::string(kindName(a.kind())) + " vs " +
                           kindName(b.kind()));
            return;
        }
        if (timingPath(path)) {
            // Timing subtrees: values answer only to --perf-tol,
            // which composes with --structure-only — a golden gate
            // checks shape everywhere and, when a tolerance is set,
            // phase-time drift here. compareTiming recurses on its
            // own, so fire it once at each subtree root.
            if (path == "/phases" || path == "/env")
                compareTiming(path, a, b);
            if (!options.structureOnly)
                return;
        }
        if (options.structureOnly) {
            if (a.isObject()) {
                compareObjectShape(path, a, b);
                for (const auto &[key, value] : a.members()) {
                    const JsonValue *other = b.find(key);
                    if (other)
                        compare(path + "/" + key, value, *other);
                }
            }
            // Arrays and leaves: shape checked by kind above;
            // element counts and values legitimately move run to
            // run (phases, per-window rows).
            return;
        }
        switch (a.kind()) {
          case JsonValue::Kind::Null:
            return;
          case JsonValue::Kind::Bool:
            if (a.asBool() != b.asBool())
                drift(path, "bool differs");
            return;
          case JsonValue::Kind::String:
            if (a.asString() != b.asString()) {
                drift(path, "'" + a.asString() + "' vs '" +
                                b.asString() + "'");
            }
            return;
          case JsonValue::Kind::Int:
          case JsonValue::Kind::Uint:
          case JsonValue::Kind::Double: {
            const double d = relDiff(a.asDouble(), b.asDouble());
            if (d > options.avfTol) {
                drift(path,
                      a.dump() + " vs " + b.dump() +
                          " (rel " + std::to_string(d) + ")");
            }
            return;
          }
          case JsonValue::Kind::Array: {
            if (a.items().size() != b.items().size()) {
                structural(path,
                           std::to_string(a.items().size()) +
                               " vs " +
                               std::to_string(b.items().size()) +
                               " elements");
                return;
            }
            for (std::size_t i = 0; i < a.items().size(); ++i) {
                compare(path + "/" + std::to_string(i),
                        a.items()[i], b.items()[i]);
            }
            return;
          }
          case JsonValue::Kind::Object: {
            if (isRateObject(a) && isRateObject(b)) {
                compareRate(path, a, b);
                return;
            }
            compareObjectShape(path, a, b);
            for (const auto &[key, value] : a.members()) {
                const JsonValue *other = b.find(key);
                if (other)
                    compare(path + "/" + key, value, *other);
            }
            return;
          }
        }
    }

    /**
     * Key-set symmetry only; member kinds and recursion are
     * compare()'s job so timing subtrees keep their special
     * handling on the way down.
     */
    void
    compareObjectShape(const std::string &path, const JsonValue &a,
                       const JsonValue &b)
    {
        for (const auto &[key, value] : a.members()) {
            if (!b.find(key))
                structural(path + "/" + key,
                           "missing from candidate");
        }
        for (const auto &[key, value] : b.members()) {
            if (!a.find(key))
                structural(path + "/" + key,
                           "missing from reference");
        }
    }

    /** Inside /phases and /env: only seconds, only with perfTol. */
    void
    compareTiming(const std::string &path, const JsonValue &a,
                  const JsonValue &b)
    {
        if (options.perfTol < 0)
            return;
        if (a.isObject() && b.isObject()) {
            const JsonValue *name = a.find("name");
            const JsonValue *a_s = a.find("seconds");
            const JsonValue *b_s = b.find("seconds");
            if (a_s && b_s && a_s->isNumber() && b_s->isNumber()) {
                const double d =
                    relDiff(a_s->asDouble(), b_s->asDouble());
                if (d > options.perfTol) {
                    perf(path +
                             (name && name->isString()
                                  ? "(" + name->asString() + ")"
                                  : ""),
                         a_s->dump() + "s vs " + b_s->dump() +
                             "s (rel " + std::to_string(d) + ")");
                }
                return;
            }
        }
        if (a.isArray() && b.isArray()) {
            const std::size_t n =
                std::min(a.items().size(), b.items().size());
            for (std::size_t i = 0; i < n; ++i) {
                compareTiming(path + "/" + std::to_string(i),
                              a.items()[i], b.items()[i]);
            }
        }
        if (a.isObject() && b.isObject()) {
            for (const auto &[key, value] : a.members()) {
                const JsonValue *other = b.find(key);
                if (other)
                    compareTiming(path + "/" + key, value, *other);
            }
        }
    }
};

void
printSection(const std::string &name, const JsonValue &value,
             std::ostream &os, int depth)
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    if (value.isObject()) {
        os << pad << name << ":\n";
        for (const auto &[key, member] : value.members())
            printSection(key, member, os, depth + 1);
    } else if (value.isArray()) {
        os << pad << name << ": [" << value.items().size()
           << " entries]\n";
    } else {
        os << pad << name << ": " << value.dump() << "\n";
    }
}

} // namespace

DiffResult
diffManifests(const JsonValue &a, const JsonValue &b,
              const DiffOptions &options)
{
    Differ differ{options, {}};
    differ.compare("", a, b);
    return differ.result;
}

void
printManifest(const JsonValue &manifest, std::ostream &os)
{
    const JsonValue *tool = manifest.find("tool");
    const JsonValue *version = manifest.find("version");
    os << "manifest";
    if (tool && tool->isString())
        os << " from " << tool->asString();
    if (version && version->isNumber())
        os << " (schema v" << version->asUint() << ")";
    os << "\n";
    for (const auto &[key, value] : manifest.members()) {
        if (key == "schema" || key == "version" || key == "tool")
            continue;
        if (key == "phases" && value.isArray()) {
            os << "phases:\n";
            for (const JsonValue &phase : value.items()) {
                const JsonValue *name = phase.find("name");
                const JsonValue *seconds = phase.find("seconds");
                const JsonValue *count = phase.find("count");
                os << "  "
                   << (name && name->isString() ? name->asString()
                                                : "?")
                   << ": "
                   << (seconds ? seconds->asDouble() : 0.0) << "s";
                if (count && count->asUint() != 1)
                    os << " over " << count->asUint() << " scopes";
                os << "\n";
            }
            continue;
        }
        printSection(key, value, os, 0);
    }
}

namespace
{

/**
 * The run identity under the determinism contract: everything in the
 * manifest except "phases" and "env", which vary between repeats of
 * the same run. dump() is deterministic (insertion-ordered keys,
 * stable number rendering), so string equality is document equality
 * for manifests written by the same tool.
 */
std::string
runIdentity(const JsonValue &manifest)
{
    JsonValue stripped = JsonValue::object();
    for (const auto &[key, value] : manifest.members()) {
        if (key == "phases" || key == "env")
            continue;
        stripped.set(key, value);
    }
    return stripped.dump();
}

} // namespace

JsonValue
mergeManifests(
    std::vector<std::pair<std::string, JsonValue>> manifests,
    std::vector<std::string> *dropped)
{
    std::sort(manifests.begin(), manifests.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<std::pair<std::string, JsonValue>> unique;
    std::vector<std::pair<std::string, std::string>> seen;
    for (auto &[name, manifest] : manifests) {
        const std::string identity = runIdentity(manifest);
        const auto prior = std::find_if(
            seen.begin(), seen.end(), [&](const auto &entry) {
                return entry.first == identity;
            });
        if (prior != seen.end()) {
            if (dropped) {
                dropped->push_back("kept " + prior->second +
                                   ", dropped " + name +
                                   " (identical run)");
            }
            continue;
        }
        seen.emplace_back(identity, name);
        unique.emplace_back(name, std::move(manifest));
    }
    manifests = std::move(unique);
    JsonValue out = JsonValue::object();
    out.set("schema", "mbavf-trajectory");
    out.set("version", JsonValue(manifestVersion));
    JsonValue entries = JsonValue::array();
    for (auto &[name, manifest] : manifests) {
        JsonValue entry = JsonValue::object();
        entry.set("name", name);
        entry.set("manifest", std::move(manifest));
        entries.push(std::move(entry));
    }
    out.set("entries", std::move(entries));
    return out;
}

} // namespace mbavf::obs
