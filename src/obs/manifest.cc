#include "obs/manifest.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/parallel.hh"
#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace mbavf::obs
{

Manifest::Manifest(const std::string &tool)
{
    root_ = JsonValue::object();
    root_.set("schema", manifestSchema);
    root_.set("version", JsonValue(manifestVersion));
    root_.set("tool", tool);
    root_.set("build", buildInfoJson());
}

JsonValue
phasesJson()
{
    JsonValue out = JsonValue::array();
    for (const auto &[name, stat] : phaseStats()) {
        JsonValue entry = JsonValue::object();
        entry.set("name", name);
        entry.set("seconds", JsonValue(stat.seconds));
        entry.set("count", JsonValue(stat.count));
        out.push(std::move(entry));
    }
    return out;
}

void
Manifest::captureObservations()
{
    root_.set("phases", phasesJson());
    root_.set("metrics",
              MetricsRegistry::global().snapshot().json());
}

void
Manifest::setEnv(JsonValue extra)
{
    JsonValue env = JsonValue::object();
    env.set("threads",
            JsonValue(std::uint64_t(parallelThreads())));
    for (const auto &[key, value] : extra.members())
        env.set(key, value);
    root_.set("env", std::move(env));
}

bool
Manifest::write(const std::string &path, std::string &error) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        os << root_.dump(1) << "\n";
        os.flush();
        if (!os) {
            error = "write to '" + tmp + "' failed";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "cannot rename '" + tmp + "' to '" + path + "'";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
Manifest::load(const std::string &path, JsonValue &out,
               std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!JsonValue::parse(buffer.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    const JsonValue *schema = out.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != manifestSchema) {
        error = path + ": not an mbavf manifest (bad schema field)";
        return false;
    }
    const JsonValue *version = out.find("version");
    if (!version || !version->isNumber() ||
        version->asUint() == 0 ||
        version->asUint() > manifestVersion) {
        error = path + ": unsupported manifest version";
        return false;
    }
    return true;
}

} // namespace mbavf::obs
