/**
 * @file
 * Chrome trace_event collector: scoped slices on per-thread tracks,
 * exported as the JSON array format chrome://tracing and Perfetto
 * load directly.
 *
 * Events are buffered in per-thread vectors (registered with a
 * global collector on each thread's first event) so the hot path
 * never takes a lock; writeChromeTrace() snapshots all buffers,
 * sorts by (track, start), and emits one complete ("ph":"X") event
 * per slice plus thread_name metadata per track. Track ids are
 * parallelWorkerId(), so one track per pool worker — exactly the
 * shape the campaign-trial and mode-sweep slices want.
 *
 * Like metrics, tracing costs one relaxed load and a branch until
 * setTracingEnabled(true) attaches a sink (--trace-out).
 */

#ifndef MBAVF_OBS_TRACE_HH
#define MBAVF_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace mbavf::obs
{

namespace detail
{
extern std::atomic<bool> tracingEnabledFlag;
} // namespace detail

inline bool
tracingEnabled()
{
    return detail::tracingEnabledFlag.load(std::memory_order_relaxed);
}

void setTracingEnabled(bool enabled);

/**
 * Record one complete slice on the calling thread's track.
 * @p start_us / @p dur_us are microseconds on the process-wide
 * monotonic timebase (traceNowUs()).
 */
void traceComplete(const char *name, double start_us, double dur_us);

/** Microseconds since the collector's epoch (monotonic). */
double traceNowUs();

/** Scoped slice: records [ctor, dtor) when tracing is enabled. */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
    {
        if (tracingEnabled()) {
            name_ = name;
            startUs_ = traceNowUs();
        }
    }

    ~TraceScope()
    {
        if (name_)
            traceComplete(name_, startUs_, traceNowUs() - startUs_);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_ = nullptr;
    double startUs_ = 0.0;
};

/**
 * Write every buffered event to @p path as a Chrome trace JSON
 * object. Returns false with a diagnostic in @p error on I/O
 * failure. Safe to call with tracing still enabled (events recorded
 * concurrently may or may not be included).
 */
bool writeChromeTrace(const std::string &path, std::string &error);

/** Drop all buffered events (tests and tools between runs). */
void resetTrace();

/** Number of buffered events across all threads (tests). */
std::size_t traceEventCount();

} // namespace mbavf::obs

#endif // MBAVF_OBS_TRACE_HH
