/**
 * @file
 * The one wall-clock stopwatch for benches and heartbeats. Every
 * harness that used to roll its own std::chrono snippet uses this
 * instead, so elapsed-time reporting is uniform (monotonic clock,
 * double seconds) across the codebase.
 */

#ifndef MBAVF_OBS_STOPWATCH_HH
#define MBAVF_OBS_STOPWATCH_HH

#include <chrono>

namespace mbavf::obs
{

/** Monotonic elapsed-seconds timer; starts at construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Reset the origin; returns the elapsed seconds up to now. */
    double
    restart()
    {
        Clock::time_point now = Clock::now();
        double elapsed =
            std::chrono::duration<double>(now - start_).count();
        start_ = now;
        return elapsed;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace mbavf::obs

#endif // MBAVF_OBS_STOPWATCH_HH
