/**
 * @file
 * Manifest reporting logic behind tools/mbavf_report: pretty-print
 * one manifest, diff two (the perf/AVF drift gate CI runs), and
 * merge a set of bench manifests into one trajectory document.
 *
 * Diff semantics (diffManifests):
 *
 * - "phases" and "env" are perf/context data. Their values are never
 *   structural drift; with perfTol >= 0 a phase's seconds drifting
 *   by more than perfTol (relative) is reported as perf drift.
 * - An object of shape {count, rate, ci_low, ci_high} is a campaign
 *   rate: the two runs drift only when their Wilson intervals are
 *   disjoint — statistically incompatible, not merely resampled.
 * - Every other number must match within avfTol (relative; 0 =
 *   exact), strings and bools exactly; a key present on one side
 *   only is a structural mismatch.
 * - structureOnly compares shape alone: matching key sets and value
 *   types, recursing through objects but not into array elements or
 *   leaf values. CI diffs a fresh bench manifest against a golden
 *   one this way, since values and timings legitimately move.
 */

#ifndef MBAVF_OBS_REPORT_HH
#define MBAVF_OBS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace mbavf::obs
{

/** Knobs for diffManifests (see file comment). */
struct DiffOptions
{
    /** Compare shape only (key sets and value types). */
    bool structureOnly = false;
    /** Relative tolerance for deterministic numbers (0 = exact). */
    double avfTol = 0.0;
    /** Relative tolerance for phase seconds; < 0 ignores timing. */
    double perfTol = -1.0;
};

/** Outcome of one manifest diff. */
struct DiffResult
{
    /** Key-set or type mismatches ("structure: ..." notes). */
    bool structuralMismatch = false;
    /** Value drift beyond tolerance / disjoint CIs / perf drift. */
    bool drifted = false;
    /** Human-readable findings, one per difference. */
    std::vector<std::string> notes;

    bool clean() const { return !structuralMismatch && !drifted; }
};

/** Compare @p a (reference) against @p b (candidate). */
DiffResult diffManifests(const JsonValue &a, const JsonValue &b,
                         const DiffOptions &options);

/** Human-oriented rendering of one manifest. */
void printManifest(const JsonValue &manifest, std::ostream &os);

/**
 * Merge bench manifests into one trajectory document:
 * { schema: "mbavf-trajectory", version, entries: [ {name, manifest},
 * ... ] } with entries sorted by name for reproducible output.
 *
 * Two manifests whose deterministic content (everything outside
 * "phases" and "env" — the run id under the determinism contract) is
 * identical are the same run measured twice; merging both would
 * double-count it in any trajectory plot. The duplicate with the
 * lexically-later name is dropped, and when @p dropped is non-null a
 * "kept X, dropped Y" diagnostic per duplicate is appended to it.
 */
JsonValue mergeManifests(
    std::vector<std::pair<std::string, JsonValue>> manifests,
    std::vector<std::string> *dropped = nullptr);

} // namespace mbavf::obs

#endif // MBAVF_OBS_REPORT_HH
