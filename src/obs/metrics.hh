/**
 * @file
 * Deterministic metrics registry: counters, gauges, and fixed-bucket
 * histograms for the analysis and campaign hot paths.
 *
 * Cost model. All instrumentation is compiled in unconditionally but
 * costs one relaxed atomic load and a predictable branch while no
 * sink is attached (metricsEnabled() == false, the default) — the
 * same contract MBAVF_CHECK has for invariants, proved by
 * bench/micro_obs_overhead. Attaching a sink (--manifest, a bench
 * reporter) flips the flag for the whole process.
 *
 * Determinism. Counters and histogram buckets are sharded across a
 * fixed array of cache-line-padded cells indexed by
 * parallelWorkerId() to keep hot increments contention-free; a
 * snapshot merges shards by unsigned addition and sorts metrics by
 * name, so every exported number is bit-identical at any --threads —
 * the same contract as common/parallel.hh. Gauges are single-cell
 * set-last semantics and must only be set from coordinating code,
 * never from racing workers.
 *
 * Handles (Counter, Gauge, Histogram) are cheap copyable pointers
 * into the process-wide registry; look them up once outside the hot
 * loop and increment through the handle inside it.
 */

#ifndef MBAVF_OBS_METRICS_HH
#define MBAVF_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hh"
#include "obs/json.hh"

namespace mbavf::obs
{

/** Process-wide metrics enable flag (see file comment). */
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

namespace detail
{

/** Shard count; ids map onto shards modulo this. Power of two. */
constexpr unsigned numShards = 64;

struct alignas(64) Shard
{
    std::atomic<std::uint64_t> value{0};
};

struct CounterCell
{
    std::string name;
    Shard shards[numShards];

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const Shard &s : shards)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }
};

struct GaugeCell
{
    std::string name;
    std::atomic<std::int64_t> value{0};
};

struct HistogramCell
{
    std::string name;
    /** Ascending upper bounds; bucket i counts v <= bounds[i], the
     *  implicit final bucket counts everything above the last. */
    std::vector<std::uint64_t> bounds;
    std::vector<CounterCell> buckets; // bounds.size() + 1 cells
};

extern std::atomic<bool> metricsEnabledFlag;

} // namespace detail

inline bool
metricsEnabled()
{
    return detail::metricsEnabledFlag.load(std::memory_order_relaxed);
}

/** Monotonic counter handle. */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n = 1) const
    {
        if (!metricsEnabled() || !cell_)
            return;
        detail::Shard &shard =
            cell_->shards[parallelWorkerId() %
                          detail::numShards];
        shard.value.fetch_add(n, std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(detail::CounterCell *cell) : cell_(cell) {}
    detail::CounterCell *cell_ = nullptr;
};

/** Point-in-time gauge handle (set from coordinating code only). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v) const
    {
        if (!metricsEnabled() || !cell_)
            return;
        cell_->value.store(v, std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(detail::GaugeCell *cell) : cell_(cell) {}
    detail::GaugeCell *cell_ = nullptr;
};

/** Fixed-bucket histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    void
    observe(std::uint64_t v) const
    {
        if (!metricsEnabled() || !cell_)
            return;
        std::size_t b = 0;
        while (b < cell_->bounds.size() && v > cell_->bounds[b])
            ++b;
        detail::Shard &shard =
            cell_->buckets[b].shards[parallelWorkerId() %
                                     detail::numShards];
        shard.value.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Histogram(detail::HistogramCell *cell) : cell_(cell) {}
    detail::HistogramCell *cell_ = nullptr;
};

/** One merged, name-sorted export of the registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;

    struct HistogramData
    {
        std::string name;
        std::vector<std::uint64_t> bounds;
        /** counts[i] pairs with bounds[i]; the final extra entry is
         *  the overflow bucket. */
        std::vector<std::uint64_t> counts;

        std::uint64_t total() const;
    };
    std::vector<HistogramData> histograms;

    /** The manifest "metrics" section. */
    JsonValue json() const;
};

/**
 * The process-wide registry. Registration (counter()/gauge()/
 * histogram()) takes a lock and is for setup code; the returned
 * handles are lock-free. Re-registering a name returns the existing
 * metric (histograms additionally require identical bounds).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name,
                        std::vector<std::uint64_t> bounds);

    /** Deterministic merged export (see file comment). */
    MetricsSnapshot snapshot() const;

    /** Zero every value; handles stay valid. Tests only. */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    // unique_ptr keeps cell addresses stable across registrations,
    // which the outstanding handles require.
    std::vector<std::unique_ptr<detail::CounterCell>> counters_;
    std::vector<std::unique_ptr<detail::GaugeCell>> gauges_;
    std::vector<std::unique_ptr<detail::HistogramCell>> histograms_;
};

} // namespace mbavf::obs

#endif // MBAVF_OBS_METRICS_HH
