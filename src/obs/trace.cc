#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/parallel.hh"
#include "obs/json.hh"

namespace mbavf::obs
{

namespace detail
{
std::atomic<bool> tracingEnabledFlag{false};
} // namespace detail

namespace
{

struct TraceEvent
{
    const char *name;
    double startUs;
    double durUs;
    unsigned tid;
};

/**
 * Per-thread event buffer, registered with the global list on first
 * use. Buffers are never deallocated before process exit (thread
 * destructors only mark them quiescent), so the writer can snapshot
 * from any thread.
 */
struct Buffer
{
    std::mutex mutex; ///< taken by the owner per push and the writer
    std::vector<TraceEvent> events;
};

struct Collector
{
    std::mutex mutex;
    std::vector<Buffer *> buffers; // leaked on purpose: see Buffer
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Collector &
collector()
{
    static Collector instance;
    return instance;
}

Buffer &
threadBuffer()
{
    thread_local Buffer *buffer = [] {
        auto *b = new Buffer();
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        c.buffers.push_back(b);
        return b;
    }();
    return *buffer;
}

} // namespace

void
setTracingEnabled(bool enabled)
{
    detail::tracingEnabledFlag.store(enabled,
                                     std::memory_order_relaxed);
}

double
traceNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() -
               collector().epoch)
        .count();
}

void
traceComplete(const char *name, double start_us, double dur_us)
{
    Buffer &buffer = threadBuffer();
    TraceEvent event{name, start_us, dur_us, parallelWorkerId()};
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(event);
}

bool
writeChromeTrace(const std::string &path, std::string &error)
{
    std::vector<TraceEvent> events;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        for (Buffer *buffer : c.buffers) {
            std::lock_guard<std::mutex> bl(buffer->mutex);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.startUs < b.startUs;
              });

    JsonValue doc = JsonValue::object();
    JsonValue list = JsonValue::array();
    unsigned last_tid = ~0u;
    for (const TraceEvent &event : events) {
        if (event.tid != last_tid) {
            last_tid = event.tid;
            // One thread_name metadata record per track so the
            // viewer labels pool workers.
            JsonValue meta = JsonValue::object();
            meta.set("ph", "M");
            meta.set("pid", std::uint64_t(1));
            meta.set("tid", std::uint64_t(event.tid));
            meta.set("name", "thread_name");
            JsonValue args = JsonValue::object();
            args.set("name",
                     event.tid == 0
                         ? std::string("main")
                         : "worker-" + std::to_string(event.tid));
            meta.set("args", std::move(args));
            list.push(std::move(meta));
        }
        JsonValue e = JsonValue::object();
        e.set("ph", "X");
        e.set("pid", std::uint64_t(1));
        e.set("tid", std::uint64_t(event.tid));
        e.set("name", event.name);
        e.set("ts", event.startUs);
        e.set("dur", event.durUs);
        list.push(std::move(e));
    }
    doc.set("traceEvents", std::move(list));
    doc.set("displayTimeUnit", "ms");

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    os << doc.dump(1) << "\n";
    os.flush();
    if (!os) {
        error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

void
resetTrace()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    for (Buffer *buffer : c.buffers) {
        std::lock_guard<std::mutex> bl(buffer->mutex);
        buffer->events.clear();
    }
}

std::size_t
traceEventCount()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    std::size_t n = 0;
    for (Buffer *buffer : c.buffers) {
        std::lock_guard<std::mutex> bl(buffer->mutex);
        n += buffer->events.size();
    }
    return n;
}

} // namespace mbavf::obs
