/**
 * @file
 * Schema-versioned run manifests: the machine-readable record of one
 * mbavf run (CLI invocation, campaign, or bench harness).
 *
 * A manifest is a JSON object with a fixed envelope:
 *
 *   {
 *     "schema": "mbavf-manifest",
 *     "version": 1,
 *     "tool": "<producer>",
 *     "build": { git, compiler, build_type, flags, sanitize,
 *                runtime_checks },
 *     ...producer sections...,
 *     "phases": [ {name, seconds, count}, ... ],
 *     "metrics": { counters, gauges, histograms },
 *     "env": { threads, ... }
 *   }
 *
 * Producer sections by convention: "run" (workload/structure/scheme
 * configuration), "cache" (CacheStats), "avf" (per-mode fractions),
 * "ser", "campaign" (tally with Wilson CIs), "tables" (bench rows).
 *
 * Determinism contract: everything outside "phases" and "env" is a
 * pure function of the run configuration — bit-identical at any
 * --threads. "phases" carries wall-clock seconds and "env" run-local
 * context (thread count); mbavf_report treats exactly those two
 * sections as perf data and excludes them from structural diffs.
 *
 * Files are written via write-temporary + rename so a concurrently
 * reading consumer never observes a half-written manifest, and the
 * loader re-validates the envelope (schema string and a version it
 * understands) before anything trusts the contents.
 */

#ifndef MBAVF_OBS_MANIFEST_HH
#define MBAVF_OBS_MANIFEST_HH

#include <string>

#include "obs/json.hh"

namespace mbavf::obs
{

/** Current manifest schema version. */
inline constexpr std::uint64_t manifestVersion = 1;

/** Schema identifier in the "schema" field. */
inline constexpr const char *manifestSchema = "mbavf-manifest";

/** Builder for one manifest document. */
class Manifest
{
  public:
    /** Starts the envelope: schema, version, @p tool, build info. */
    explicit Manifest(const std::string &tool);

    /** The underlying document (envelope already populated). */
    JsonValue &root() { return root_; }
    const JsonValue &root() const { return root_; }

    /** Add (or replace) a producer section. */
    void
    set(const std::string &key, JsonValue value)
    {
        root_.set(key, std::move(value));
    }

    /**
     * Snapshot the obs phase table into "phases" and the metrics
     * registry into "metrics". Call once, after the measured work.
     */
    void captureObservations();

    /**
     * Record run-local context ("env" section): pool threads plus
     * any caller-provided extras.
     */
    void setEnv(JsonValue extra = JsonValue::object());

    /**
     * Serialize to @p path (pretty-printed, trailing newline) via
     * write-temporary + rename. False + @p error on I/O failure.
     */
    bool write(const std::string &path, std::string &error) const;

    /**
     * Parse @p path and validate the envelope: readable file, valid
     * JSON, "schema" == manifestSchema, integer "version" <=
     * manifestVersion. False + @p error otherwise.
     */
    static bool load(const std::string &path, JsonValue &out,
                     std::string &error);

  private:
    JsonValue root_;
};

/** "phases" section from the current phase table. */
JsonValue phasesJson();

} // namespace mbavf::obs

#endif // MBAVF_OBS_MANIFEST_HH
