#include "obs/phase.hh"

#include <algorithm>
#include <map>
#include <mutex>

namespace mbavf::obs
{

namespace detail
{
std::atomic<bool> timingEnabledFlag{false};
} // namespace detail

namespace
{

struct PhaseTable
{
    std::mutex mutex;
    std::map<std::string, PhaseStat> stats;
};

PhaseTable &
table()
{
    static PhaseTable instance;
    return instance;
}

} // namespace

void
setTimingEnabled(bool enabled)
{
    detail::timingEnabledFlag.store(enabled,
                                    std::memory_order_relaxed);
}

void
recordPhase(const char *name, double seconds)
{
    PhaseTable &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    PhaseStat &stat = t.stats[name];
    stat.seconds += seconds;
    ++stat.count;
}

std::vector<std::pair<std::string, PhaseStat>>
phaseStats()
{
    PhaseTable &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    // std::map iteration is already name-sorted.
    return {t.stats.begin(), t.stats.end()};
}

void
resetPhases()
{
    PhaseTable &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    t.stats.clear();
}

} // namespace mbavf::obs
