/**
 * @file
 * Minimal JSON document model for the observability subsystem.
 *
 * Manifests, Chrome traces, and the mbavf_report tool all speak JSON;
 * this module provides the one tree type they share, a writer whose
 * output is deterministic (object members keep insertion order,
 * doubles print shortest-round-trip via std::to_chars), and a strict
 * recursive-descent parser that rejects anything malformed with a
 * byte offset — including every possible truncation of a valid
 * document, which the manifest fuzz tests rely on.
 *
 * Numbers preserve their lexical class: integers without sign stay
 * exact std::uint64_t, negative integers std::int64_t, everything
 * else double. Writing a parsed document reproduces every number
 * bit-identically, which is what lets mbavf_report diff two runs for
 * exact equality.
 */

#ifndef MBAVF_OBS_JSON_HH
#define MBAVF_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mbavf::obs
{

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Int,    ///< negative integer literal (std::int64_t)
        Uint,   ///< nonnegative integer literal (std::uint64_t)
        Double, ///< any literal with '.', 'e', or out of range
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(std::int64_t v)
        : kind_(v < 0 ? Kind::Int : Kind::Uint)
    {
        if (v < 0)
            int_ = v;
        else
            uint_ = static_cast<std::uint64_t>(v);
    }
    JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
    JsonValue(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    JsonValue(double v) : kind_(Kind::Double), double_(v) {}
    JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {}
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }

    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    bool asBool() const { return bool_; }
    const std::string &asString() const { return string_; }

    /** Numeric value as double (exact for small integers). */
    double asDouble() const;

    /** Numeric value as u64; saturates negatives/doubles to 0. */
    std::uint64_t asUint() const;

    // -- Object interface (insertion order is preserved) --

    /** Set @p key to @p value (replacing any existing member). */
    JsonValue &set(const std::string &key, JsonValue value);

    /** Member lookup; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    JsonValue *
    find(std::string_view key)
    {
        return const_cast<JsonValue *>(
            std::as_const(*this).find(key));
    }

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    // -- Array interface --

    JsonValue &push(JsonValue value);

    const std::vector<JsonValue> &items() const { return items_; }
    std::vector<JsonValue> &items() { return items_; }

    std::size_t
    size() const
    {
        return kind_ == Kind::Array ? items_.size()
                                    : members_.size();
    }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

    /**
     * Strict parse of exactly one document (trailing whitespace
     * allowed, anything else is an error). On failure returns false
     * and describes the problem and byte offset in @p error.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string &error);

    /**
     * Structural equality. Numbers compare by value across lexical
     * classes (1 == 1.0); objects compare as unordered key sets.
     */
    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace mbavf::obs

#endif // MBAVF_OBS_JSON_HH
