/**
 * @file
 * Scoped phase timers over a process-wide phase table.
 *
 * ObsTimer accumulates its scope's wall time under a fixed name in
 * the phase table (total seconds + entry count), which manifests
 * export as the per-phase timing section. ObsPhase does the same and
 * additionally emits a Chrome trace slice (obs/trace.hh), so the
 * same annotation feeds both the timing summary and the trace
 * timeline. Names must be string literals (they are stored by
 * pointer on the trace path).
 *
 * Both are free when no sink is attached: the constructor is one
 * relaxed load and a branch when timingEnabled() and
 * tracingEnabled() are both false (the default), proved by
 * bench/micro_obs_overhead.
 *
 * The phase table itself is mutex-guarded — entries are recorded
 * once per phase scope, never per element of a hot loop. Seconds are
 * wall-clock and thus never part of the determinism contract; the
 * manifest diff treats them as perf data, not structure.
 */

#ifndef MBAVF_OBS_PHASE_HH
#define MBAVF_OBS_PHASE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hh"

namespace mbavf::obs
{

namespace detail
{
extern std::atomic<bool> timingEnabledFlag;
} // namespace detail

inline bool
timingEnabled()
{
    return detail::timingEnabledFlag.load(std::memory_order_relaxed);
}

void setTimingEnabled(bool enabled);

/** Accumulated wall time of one phase name. */
struct PhaseStat
{
    double seconds = 0.0;
    std::uint64_t count = 0;
};

/** Record @p seconds under @p name (ObsTimer does this for you). */
void recordPhase(const char *name, double seconds);

/** All phases recorded so far, sorted by name. */
std::vector<std::pair<std::string, PhaseStat>> phaseStats();

/** Clear the phase table (tests and tools between runs). */
void resetPhases();

/** Scoped timer: adds its lifetime to the phase table. */
class ObsTimer
{
  public:
    explicit ObsTimer(const char *name)
    {
        if (timingEnabled()) {
            name_ = name;
            startUs_ = traceNowUs();
        }
    }

    ~ObsTimer()
    {
        if (name_) {
            recordPhase(name_,
                        (traceNowUs() - startUs_) * 1e-6);
        }
    }

    ObsTimer(const ObsTimer &) = delete;
    ObsTimer &operator=(const ObsTimer &) = delete;

  private:
    const char *name_ = nullptr;
    double startUs_ = 0.0;
};

/** Scoped timer that also emits a Chrome trace slice. */
class ObsPhase
{
  public:
    explicit ObsPhase(const char *name)
    {
        if (timingEnabled() || tracingEnabled()) {
            name_ = name;
            startUs_ = traceNowUs();
        }
    }

    ~ObsPhase()
    {
        if (!name_)
            return;
        double end_us = traceNowUs();
        if (timingEnabled())
            recordPhase(name_, (end_us - startUs_) * 1e-6);
        if (tracingEnabled())
            traceComplete(name_, startUs_, end_us - startUs_);
    }

    ObsPhase(const ObsPhase &) = delete;
    ObsPhase &operator=(const ObsPhase &) = delete;

  private:
    const char *name_ = nullptr;
    double startUs_ = 0.0;
};

} // namespace mbavf::obs

#endif // MBAVF_OBS_PHASE_HH
