/**
 * @file
 * Header-only converters from domain result types (core, mem,
 * inject) to manifest JSON sections.
 *
 * These live outside the mbavf_obs library on purpose: the
 * instrumented layers (inject, core) link against mbavf_obs, so
 * mbavf_obs itself must not link back at them. Inlining the
 * converters into the final binaries (tools, benches, tests — which
 * all link the domain libraries anyway) keeps the layering acyclic.
 */

#ifndef MBAVF_OBS_ADAPTERS_HH
#define MBAVF_OBS_ADAPTERS_HH

#include "common/table.hh"
#include "core/mbavf.hh"
#include "core/ser.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "mem/cache.hh"
#include "obs/json.hh"

namespace mbavf::obs
{

/** "cache" section entry for one cache's statistics. */
inline JsonValue
cacheStatsJson(const CacheStats &stats)
{
    JsonValue out = JsonValue::object();
    out.set("hits", JsonValue(stats.hits));
    out.set("misses", JsonValue(stats.misses));
    out.set("evictions", JsonValue(stats.evictions));
    out.set("writebacks", JsonValue(stats.writebacks));
    out.set("miss_rate", JsonValue(stats.missRate()));
    return out;
}

/** One AVF split as {sdc, true_due, false_due, total}. */
inline JsonValue
avfJson(const AvfFractions &avf)
{
    JsonValue out = JsonValue::object();
    out.set("sdc", JsonValue(avf.sdc));
    out.set("true_due", JsonValue(avf.trueDue));
    out.set("false_due", JsonValue(avf.falseDue));
    out.set("total", JsonValue(avf.total()));
    return out;
}

/** "avf" section: per-mode whole-run (and windowed) fractions. */
inline JsonValue
modeSweepJson(const ModeSweep &sweep)
{
    JsonValue modes = JsonValue::array();
    for (std::size_t m = 0; m < sweep.results.size(); ++m) {
        const MbAvfResult &result = sweep.results[m];
        JsonValue entry = JsonValue::object();
        entry.set("mode", std::to_string(m + 1) + "x1");
        entry.set("avf", avfJson(result.avf));
        entry.set("groups", JsonValue(result.numGroups));
        if (!result.windows.empty()) {
            JsonValue windows = JsonValue::array();
            for (const AvfFractions &w : result.windows)
                windows.push(avfJson(w));
            entry.set("windows", std::move(windows));
        }
        modes.push(std::move(entry));
    }
    JsonValue out = JsonValue::object();
    out.set("modes", std::move(modes));
    return out;
}

/** "ser" section. */
inline JsonValue
serJson(const StructureSer &ser)
{
    JsonValue out = JsonValue::object();
    out.set("sdc", JsonValue(ser.sdc));
    out.set("true_due", JsonValue(ser.trueDue));
    out.set("false_due", JsonValue(ser.falseDue));
    out.set("due", JsonValue(ser.due()));
    return out;
}

/**
 * "campaign" tally section: per-outcome counts with Wilson 95% CIs
 * (the CI bounds are what mbavf_report's drift check keys on), plus
 * diagnostic-code counts.
 */
inline JsonValue
tallyJson(const CampaignTally &tally)
{
    JsonValue outcomes = JsonValue::object();
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        const WilsonInterval rate = tally.rate(outcome);
        JsonValue entry = JsonValue::object();
        entry.set("count", JsonValue(tally.count(outcome)));
        entry.set("rate", JsonValue(rate.point));
        entry.set("ci_low", JsonValue(rate.low));
        entry.set("ci_high", JsonValue(rate.high));
        outcomes.set(injectOutcomeName(outcome), std::move(entry));
    }
    JsonValue codes = JsonValue::object();
    for (const auto &[code, count] : tally.codeCounts)
        codes.set(code, JsonValue(count));
    JsonValue out = JsonValue::object();
    out.set("trials", JsonValue(tally.total()));
    out.set("outcomes", std::move(outcomes));
    out.set("codes", std::move(codes));
    return out;
}

/** "tables" entry for one bench table (header + preformatted rows). */
inline JsonValue
tableJson(const Table &table)
{
    JsonValue header = JsonValue::array();
    for (const std::string &cell : table.header())
        header.push(JsonValue(cell));
    JsonValue rows = JsonValue::array();
    for (std::size_t r = 0; r < table.numRows(); ++r) {
        JsonValue row = JsonValue::array();
        for (const std::string &cell : table.row(r))
            row.push(JsonValue(cell));
        rows.push(std::move(row));
    }
    JsonValue out = JsonValue::object();
    out.set("header", std::move(header));
    out.set("rows", std::move(rows));
    return out;
}

} // namespace mbavf::obs

#endif // MBAVF_OBS_ADAPTERS_HH
