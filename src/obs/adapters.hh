/**
 * @file
 * Header-only converters from domain result types (core, mem,
 * inject) to manifest JSON sections.
 *
 * These live outside the mbavf_obs library on purpose: the
 * instrumented layers (inject, core) link against mbavf_obs, so
 * mbavf_obs itself must not link back at them. Inlining the
 * converters into the final binaries (tools, benches, tests — which
 * all link the domain libraries anyway) keeps the layering acyclic.
 */

#ifndef MBAVF_OBS_ADAPTERS_HH
#define MBAVF_OBS_ADAPTERS_HH

#include "common/table.hh"
#include "core/mbavf.hh"
#include "core/ser.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "inject/stratified.hh"
#include "mem/cache.hh"
#include "obs/json.hh"

namespace mbavf::obs
{

/** "cache" section entry for one cache's statistics. */
inline JsonValue
cacheStatsJson(const CacheStats &stats)
{
    JsonValue out = JsonValue::object();
    out.set("hits", JsonValue(stats.hits));
    out.set("misses", JsonValue(stats.misses));
    out.set("evictions", JsonValue(stats.evictions));
    out.set("writebacks", JsonValue(stats.writebacks));
    out.set("miss_rate", JsonValue(stats.missRate()));
    return out;
}

/** One AVF split as {sdc, true_due, false_due, total}. */
inline JsonValue
avfJson(const AvfFractions &avf)
{
    JsonValue out = JsonValue::object();
    out.set("sdc", JsonValue(avf.sdc));
    out.set("true_due", JsonValue(avf.trueDue));
    out.set("false_due", JsonValue(avf.falseDue));
    out.set("total", JsonValue(avf.total()));
    return out;
}

/** "avf" section: per-mode whole-run (and windowed) fractions. */
inline JsonValue
modeSweepJson(const ModeSweep &sweep)
{
    JsonValue modes = JsonValue::array();
    for (std::size_t m = 0; m < sweep.results.size(); ++m) {
        const MbAvfResult &result = sweep.results[m];
        JsonValue entry = JsonValue::object();
        entry.set("mode", std::to_string(m + 1) + "x1");
        entry.set("avf", avfJson(result.avf));
        entry.set("groups", JsonValue(result.numGroups));
        if (!result.windows.empty()) {
            JsonValue windows = JsonValue::array();
            for (const AvfFractions &w : result.windows)
                windows.push(avfJson(w));
            entry.set("windows", std::move(windows));
        }
        modes.push(std::move(entry));
    }
    JsonValue out = JsonValue::object();
    out.set("modes", std::move(modes));
    return out;
}

/** "ser" section. */
inline JsonValue
serJson(const StructureSer &ser)
{
    JsonValue out = JsonValue::object();
    out.set("sdc", JsonValue(ser.sdc));
    out.set("true_due", JsonValue(ser.trueDue));
    out.set("false_due", JsonValue(ser.falseDue));
    out.set("due", JsonValue(ser.due()));
    return out;
}

/**
 * "campaign" tally section: per-outcome counts with Wilson 95% CIs
 * (the CI bounds are what mbavf_report's drift check keys on), plus
 * diagnostic-code counts.
 */
inline JsonValue
tallyJson(const CampaignTally &tally)
{
    JsonValue outcomes = JsonValue::object();
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        const WilsonInterval rate = tally.rate(outcome);
        JsonValue entry = JsonValue::object();
        entry.set("count", JsonValue(tally.count(outcome)));
        entry.set("rate", JsonValue(rate.point));
        entry.set("ci_low", JsonValue(rate.low));
        entry.set("ci_high", JsonValue(rate.high));
        outcomes.set(injectOutcomeName(outcome), std::move(entry));
    }
    JsonValue codes = JsonValue::object();
    for (const auto &[code, count] : tally.codeCounts)
        codes.set(code, JsonValue(count));
    JsonValue out = JsonValue::object();
    out.set("trials", JsonValue(tally.total()));
    out.set("outcomes", std::move(outcomes));
    out.set("codes", std::move(codes));
    return out;
}

/**
 * "strata" section of a stratified campaign: the partition identity,
 * the allocation, per-stratum outcome tallies, and the combined
 * estimator with its effective-trials multiplier (how many uniform
 * trials the stratified interval is worth per injected trial).
 *
 * Skipped strata emit their rate object with weight 0 — the
 * placeholder mbavf_report's drift check treats as compatible with
 * any interval — while sampled strata carry their true weight.
 */
inline JsonValue
strataJson(const std::vector<Stratum> &strata, std::uint64_t hash,
           unsigned windows, std::uint32_t classes,
           double skipped_weight,
           const std::vector<StratumTally> &tallies,
           std::uint64_t budget)
{
    std::uint64_t injected = 0;
    for (const StratumTally &tally : tallies)
        injected += tally.trials;

    JsonValue combined = JsonValue::object();
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        const WilsonInterval w =
            combinedStratifiedInterval(strata, tallies, outcome);
        JsonValue entry = JsonValue::object();
        entry.set("rate", JsonValue(w.point));
        entry.set("ci_low", JsonValue(w.low));
        entry.set("ci_high", JsonValue(w.high));
        combined.set(injectOutcomeName(outcome), std::move(entry));
    }

    const WilsonInterval sdc = combinedStratifiedInterval(
        strata, tallies, InjectOutcome::Sdc);
    const std::uint64_t effective =
        injected == 0
            ? 0
            : effectiveUniformTrials(sdc.high - sdc.low, sdc.point);

    JsonValue table = JsonValue::array();
    for (std::size_t i = 0; i < strata.size(); ++i) {
        const Stratum &st = strata[i];
        const StratumTally &tally = tallies[i];
        JsonValue entry = JsonValue::object();
        entry.set("class", JsonValue(std::uint64_t(st.siteClass)));
        entry.set("window", JsonValue(std::uint64_t(st.window)));
        entry.set("weight", JsonValue(st.weight));
        entry.set("predicted", JsonValue(st.predicted));
        entry.set("skipped", JsonValue(st.skipped));
        entry.set("trials", JsonValue(tally.trials));
        JsonValue counts = JsonValue::object();
        for (std::size_t o = 0; o < numInjectOutcomes; ++o) {
            counts.set(
                injectOutcomeName(static_cast<InjectOutcome>(o)),
                JsonValue(tally.counts[o]));
        }
        entry.set("counts", std::move(counts));
        const WilsonInterval rate =
            st.skipped
                ? WilsonInterval{0.0, 0.0, 0.0}
                : wilsonInterval(tally.counts[static_cast<
                                     std::size_t>(
                                     InjectOutcome::Sdc)],
                                 tally.trials);
        JsonValue sdc_entry = JsonValue::object();
        sdc_entry.set("rate", JsonValue(rate.point));
        sdc_entry.set("ci_low", JsonValue(rate.low));
        sdc_entry.set("ci_high", JsonValue(rate.high));
        sdc_entry.set("weight",
                      JsonValue(st.skipped ? 0.0 : st.weight));
        entry.set("sdc", std::move(sdc_entry));
        table.push(std::move(entry));
    }

    JsonValue out = JsonValue::object();
    out.set("hash", JsonValue(hash));
    out.set("windows", JsonValue(std::uint64_t(windows)));
    out.set("classes", JsonValue(std::uint64_t(classes)));
    out.set("budget", JsonValue(budget));
    out.set("injected", JsonValue(injected));
    out.set("skipped_weight", JsonValue(skipped_weight));
    out.set("effective_trials", JsonValue(effective));
    out.set("multiplier",
            JsonValue(injected == 0
                          ? 0.0
                          : static_cast<double>(effective) /
                                static_cast<double>(injected)));
    out.set("combined", std::move(combined));
    out.set("table", std::move(table));
    return out;
}

/** strataJson() from a built partition. */
inline JsonValue
strataJson(const Stratification &strat,
           const std::vector<StratumTally> &tallies,
           std::uint64_t budget)
{
    return strataJson(strat.strata(), strat.hash(),
                      strat.numWindows(), strat.numClasses(),
                      strat.skippedWeight(), tallies, budget);
}

/** "tables" entry for one bench table (header + preformatted rows). */
inline JsonValue
tableJson(const Table &table)
{
    JsonValue header = JsonValue::array();
    for (const std::string &cell : table.header())
        header.push(JsonValue(cell));
    JsonValue rows = JsonValue::array();
    for (std::size_t r = 0; r < table.numRows(); ++r) {
        JsonValue row = JsonValue::array();
        for (const std::string &cell : table.row(r))
            row.push(JsonValue(cell));
        rows.push(std::move(row));
    }
    JsonValue out = JsonValue::object();
    out.set("header", std::move(header));
    out.set("rows", std::move(rows));
    return out;
}

} // namespace mbavf::obs

#endif // MBAVF_OBS_ADAPTERS_HH
