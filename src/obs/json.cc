#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mbavf::obs
{

namespace
{

/** Nesting depth cap: malformed input must never smash the stack. */
constexpr int maxDepth = 64;

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
    // Bare "1e30"-style output is a valid double literal, but a
    // mantissa-only integer ("42") would re-parse as Uint and break
    // kind round-tripping; force a fraction marker.
    std::string_view written(buf, static_cast<std::size_t>(
                                      res.ptr - buf));
    if (written.find_first_of(".eE") == std::string_view::npos)
        out += ".0";
}

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        error = what + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Encode the code point as UTF-8 (surrogates are
                // passed through as-is; the writer never emits them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    /**
     * RFC 8259 number grammar:
     * -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — notably no
     * leading zeros, no bare '.', digits required on both sides of
     * the point and after the exponent. std::from_chars is laxer
     * (it takes "01", "1.", ".5"), so this runs first.
     */
    static bool
    numberGrammarOk(std::string_view tok)
    {
        std::size_t i = 0;
        auto digit = [&](std::size_t at) {
            return at < tok.size() &&
                   std::isdigit(static_cast<unsigned char>(tok[at]));
        };
        if (i < tok.size() && tok[i] == '-')
            ++i;
        if (!digit(i))
            return false;
        if (tok[i] == '0') {
            ++i;
        } else {
            while (digit(i))
                ++i;
        }
        if (i < tok.size() && tok[i] == '.') {
            ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
            ++i;
            if (i < tok.size() &&
                (tok[i] == '+' || tok[i] == '-')) {
                ++i;
            }
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        return i == tok.size();
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {
        }
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        std::string_view tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("expected number");
        if (!numberGrammarOk(tok)) {
            pos = start;
            return fail("malformed number");
        }
        const bool integral =
            tok.find_first_of(".eE") == std::string_view::npos;
        if (integral && tok[0] != '-') {
            std::uint64_t v = 0;
            auto res =
                std::from_chars(tok.begin(), tok.end(), v);
            if (res.ec == std::errc() && res.ptr == tok.end()) {
                out = JsonValue(v);
                return true;
            }
        } else if (integral) {
            std::int64_t v = 0;
            auto res =
                std::from_chars(tok.begin(), tok.end(), v);
            if (res.ec == std::errc() && res.ptr == tok.end()) {
                out = JsonValue(v);
                return true;
            }
        }
        double d = 0.0;
        auto res = std::from_chars(tok.begin(), tok.end(), d);
        if (res.ec != std::errc() || res.ptr != tok.end()) {
            pos = start;
            return fail("malformed number");
        }
        out = JsonValue(d);
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{': {
            ++pos;
            out = JsonValue::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.set(key, std::move(value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            out = JsonValue::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.push(std::move(value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Uint: return static_cast<double>(uint_);
      case Kind::Double: return double_;
      default: return 0.0;
    }
}

std::uint64_t
JsonValue::asUint() const
{
    switch (kind_) {
      case Kind::Uint:
        return uint_;
      case Kind::Int:
        return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
      case Kind::Double:
        return double_ < 0
            ? 0
            : static_cast<std::uint64_t>(double_);
      default:
        return 0;
    }
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    kind_ = Kind::Object;
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return v;
        }
    }
    members_.emplace_back(key, std::move(value));
    return members_.back().second;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    kind_ = Kind::Array;
    items_.push_back(std::move(value));
    return items_.back();
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Int: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), int_);
        out.append(buf, res.ptr);
        return;
      }
      case Kind::Uint: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), uint_);
        out.append(buf, res.ptr);
        return;
      }
      case Kind::Double:
        appendNumber(out, double_);
        return;
      case Kind::String:
        appendEscaped(out, string_);
        return;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
JsonValue::parse(std::string_view text, JsonValue &out,
                 std::string &error)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out, 0)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = "trailing garbage at byte " + std::to_string(p.pos);
        return false;
    }
    return true;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (isNumber() && other.isNumber()) {
        if (kind_ == Kind::Uint && other.kind_ == Kind::Uint)
            return uint_ == other.uint_;
        if (kind_ == Kind::Int && other.kind_ == Kind::Int)
            return int_ == other.int_;
        return asDouble() == other.asDouble();
    }
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::String: return string_ == other.string_;
      case Kind::Array: return items_ == other.items_;
      case Kind::Object: {
        if (members_.size() != other.members_.size())
            return false;
        for (const auto &[k, v] : members_) {
            const JsonValue *o = other.find(k);
            if (!o || !(v == *o))
                return false;
        }
        return true;
      }
      default: return false; // numbers handled above
    }
}

} // namespace mbavf::obs
