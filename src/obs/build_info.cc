#include "obs/build_info.hh"

#ifndef MBAVF_GIT_HASH
#define MBAVF_GIT_HASH "unknown"
#endif
#ifndef MBAVF_BUILD_TYPE
#define MBAVF_BUILD_TYPE "unknown"
#endif
#ifndef MBAVF_CXX_FLAGS
#define MBAVF_CXX_FLAGS ""
#endif
#ifndef MBAVF_SANITIZE_LIST
#define MBAVF_SANITIZE_LIST ""
#endif

namespace mbavf::obs
{

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = [] {
        BuildInfo b;
        b.gitHash = MBAVF_GIT_HASH;
        b.compiler = __VERSION__;
        b.buildType = MBAVF_BUILD_TYPE;
        b.flags = MBAVF_CXX_FLAGS;
        b.sanitize = MBAVF_SANITIZE_LIST;
#ifdef MBAVF_RUNTIME_CHECKS
        b.runtimeChecks = true;
#endif
        return b;
    }();
    return info;
}

JsonValue
buildInfoJson()
{
    const BuildInfo &b = buildInfo();
    JsonValue out = JsonValue::object();
    out.set("git", b.gitHash);
    out.set("compiler", b.compiler);
    out.set("build_type", b.buildType);
    out.set("flags", b.flags);
    out.set("sanitize", b.sanitize);
    out.set("runtime_checks", b.runtimeChecks);
    return out;
}

std::string
versionLine(const std::string &tool)
{
    const BuildInfo &b = buildInfo();
    std::string line = tool + " (mbavf) git " + b.gitHash + ", " +
                       b.compiler + ", " + b.buildType;
    if (!b.sanitize.empty())
        line += ", sanitize=" + b.sanitize;
    line += b.runtimeChecks ? ", checks=on" : ", checks=off";
    return line;
}

} // namespace mbavf::obs
