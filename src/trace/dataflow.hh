/**
 * @file
 * Dynamic dataflow trace.
 *
 * Every value produced during functional execution (each op result,
 * each load) is a dynamic definition (DefId). Definitions record
 * which earlier definitions they consumed and with what per-bit
 * relevance. After the run, the Liveness analyzer walks the trace
 * backward to find transitively dynamically-dead definitions and the
 * per-bit logic-masking relevance of live ones — the program-level
 * masking effects the paper's ACE infrastructure accounts for
 * (Section VI-A).
 */

#ifndef MBAVF_TRACE_DATAFLOW_HH
#define MBAVF_TRACE_DATAFLOW_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** One source operand of a dynamic definition. */
struct SrcUse
{
    DefId def = noDef;
    /** Source-value bits that can affect the result. */
    std::uint32_t relevance = ~std::uint32_t(0);
    /**
     * True when the consumer propagates this source's bits
     * positionally (moves, loads, bitwise logic): the consumer's own
     * relevance then refines which source bits matter. False for
     * all-or-nothing consumption (arithmetic, compares, addresses).
     */
    bool positional = false;
};

/**
 * Append-only log of dynamic definitions. Sources always refer to
 * earlier definitions, so a single reverse pass computes liveness.
 */
class DataflowLog
{
  public:
    static constexpr unsigned maxSrcs = 4;

    /**
     * Record a definition consuming @p srcs, produced by static
     * instruction @p tag (noInstrTag for synthetic anchors).
     */
    DefId record(std::span<const SrcUse> srcs,
                 InstrTag tag = noInstrTag);

    /** Mark @p def's bits in @p mask as reaching program output. */
    void markOutput(DefId def, std::uint32_t mask = ~std::uint32_t(0));

    /** Static instruction that produced @p def. */
    InstrTag
    defTag(DefId def) const
    {
        return def < defTag_.size() ? defTag_[def] : noInstrTag;
    }

    /** Number of recorded sources of @p def. */
    unsigned
    numSrcs(DefId def) const
    {
        return def < numSrcs_.size() ? numSrcs_[def] : 0;
    }

    /** Source @p i of @p def (i < numSrcs(def)). */
    SrcUse
    src(DefId def, unsigned i) const
    {
        const std::size_t slot = std::size_t(def) * maxSrcs + i;
        return {srcDef_[slot], srcRel_[slot],
                (srcPositional_[def] >> i & 1) != 0};
    }

    /** Bits of @p def marked as reaching program output. */
    std::uint32_t
    outputMask(DefId def) const
    {
        return def < outputMask_.size() ? outputMask_[def] : 0;
    }

    std::uint64_t size() const { return numSrcs_.size(); }

    /** Bytes of trace storage in use (for capacity reporting). */
    std::uint64_t memoryBytes() const;

    void clear();

  private:
    friend class Liveness;

    std::vector<std::uint8_t> numSrcs_;
    std::vector<std::uint8_t> srcPositional_; ///< bit i = src i
    std::vector<std::uint32_t> outputMask_;
    std::vector<InstrTag> defTag_;
    /** Flat [def * maxSrcs + i] source arrays. */
    std::vector<DefId> srcDef_;
    std::vector<std::uint32_t> srcRel_;
};

/**
 * Backward liveness and relevance analysis over a DataflowLog.
 *
 * relevance(d) is the union, over all live consumers of d, of the
 * bits of d that can still affect program output: outputMask(d), plus
 * for each consumer e with source relevance m — (m & relevance(e))
 * for positional uses, or m when e is live for all-or-nothing uses.
 */
class Liveness
{
  public:
    explicit Liveness(const DataflowLog &log);

    /** Per-bit relevance of @p def; 0 = transitively dead. */
    std::uint32_t
    relevance(DefId def) const
    {
        return def < rel_.size() ? rel_[def] : 0;
    }

    bool live(DefId def) const { return relevance(def) != 0; }

    /** Number of dead definitions found. */
    std::uint64_t numDead() const { return numDead_; }

    std::uint64_t numDefs() const { return rel_.size(); }

  private:
    std::vector<std::uint32_t> rel_;
    std::uint64_t numDead_ = 0;
};

} // namespace mbavf

#endif // MBAVF_TRACE_DATAFLOW_HH
