#include "trace/dataflow.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace mbavf
{

DefId
DataflowLog::record(std::span<const SrcUse> srcs, InstrTag tag)
{
    if (srcs.size() > maxSrcs)
        panic("DataflowLog::record with ", srcs.size(), " sources");

    DefId id = numSrcs_.size();
    numSrcs_.push_back(static_cast<std::uint8_t>(srcs.size()));
    std::uint8_t positional = 0;
    outputMask_.push_back(0);
    defTag_.push_back(tag);
    srcDef_.resize(srcDef_.size() + maxSrcs, noDef);
    srcRel_.resize(srcRel_.size() + maxSrcs, 0);
    for (std::size_t i = 0; i < srcs.size(); ++i) {
        if (srcs[i].def != noDef && srcs[i].def >= id)
            panic("DataflowLog source refers forward");
        srcDef_[id * maxSrcs + i] = srcs[i].def;
        srcRel_[id * maxSrcs + i] = srcs[i].relevance;
        if (srcs[i].positional)
            positional |= std::uint8_t(1) << i;
    }
    srcPositional_.push_back(positional);
    return id;
}

void
DataflowLog::markOutput(DefId def, std::uint32_t mask)
{
    if (def >= outputMask_.size())
        panic("markOutput on unknown def");
    outputMask_[def] |= mask;
}

std::uint64_t
DataflowLog::memoryBytes() const
{
    return numSrcs_.size() * (2 + 4 + 4 + maxSrcs * (8 + 4));
}

void
DataflowLog::clear()
{
    numSrcs_.clear();
    srcPositional_.clear();
    outputMask_.clear();
    defTag_.clear();
    srcDef_.clear();
    srcRel_.clear();
}

Liveness::Liveness(const DataflowLog &log)
{
    const std::uint64_t n = log.size();
    rel_ = log.outputMask_;

    for (std::uint64_t e = n; e-- > 0;) {
        const std::uint32_t rel_e = rel_[e];
        if (!rel_e)
            continue;
        const unsigned ns = log.numSrcs_[e];
        const std::uint8_t positional = log.srcPositional_[e];
        for (unsigned i = 0; i < ns; ++i) {
            DefId s = log.srcDef_[e * DataflowLog::maxSrcs + i];
            if (s == noDef)
                continue;
            // record() rejects forward references; a violation here
            // means the log was corrupted after recording, and the
            // backward pass would silently mis-propagate liveness.
            MBAVF_CHECK(s < e, "def ", e, " source ", i,
                        " refers forward to ", s);
            std::uint32_t m = log.srcRel_[e * DataflowLog::maxSrcs + i];
            // A fully-masked source (relevance 0, e.g. AND with an
            // all-zero operand) contributes nothing: skip it outright
            // so no OR path can ever report it live through this use.
            if (!m)
                continue;
            rel_[s] |= (positional >> i & 1) ? (m & rel_e) : m;
        }
    }

    for (std::uint32_t r : rel_) {
        if (!r)
            ++numDead_;
    }
}

} // namespace mbavf
