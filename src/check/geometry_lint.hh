/**
 * @file
 * Geometry lint: layouts, fault modes, and protection domains.
 *
 * The paper's interleaving study (Fig. 4) rests on one geometric
 * contract: with interleave factor I, the bits of one protection
 * domain occupy physical columns that are congruent mod I, so an
 * m-bit contiguous strike with m <= I touches each domain at most
 * once. A layout whose domains straddle an interleave boundary
 * silently re-creates the multi-bit exposure interleaving was meant
 * to remove. These passes walk a PhysicalArray cell by cell and
 * verify that contract, plus basic sanity of fault-mode placement
 * and protection-scheme behavior.
 *
 * Codes reported:
 * - geometry.empty-array        zero rows or columns
 * - geometry.interleave-row-width  I does not divide the row width
 * - geometry.bit-out-of-container  bitInContainer >= container bits
 * - geometry.invalid-domain     cell maps to invalidDomain
 * - geometry.domain-straddle    domain bits not congruent mod I
 * - geometry.domain-split-rows  one domain spread over several rows
 * - geometry.domain-size-mismatch  domains of unequal bit counts
 * - geometry.mode-offsets       fault pattern not normalized
 * - geometry.mode-groups-mismatch  numGroups() arithmetic is wrong
 * - geometry.mode-no-groups     mode does not fit the array (warning)
 * - geometry.scheme-zero-flips  scheme does not treat 0 flips as ok
 * - geometry.scheme-domain      empty protection domain
 */

#ifndef MBAVF_CHECK_GEOMETRY_LINT_HH
#define MBAVF_CHECK_GEOMETRY_LINT_HH

#include <string>
#include <vector>

#include "check/report.hh"
#include "core/fault_mode.hh"
#include "core/layout.hh"
#include "core/protection.hh"

namespace mbavf
{

/** Knobs for the physical-array lint pass. */
struct GeometryLintOptions
{
    /** Interleave factor the layout was built with. */
    unsigned interleave = 1;
    /** Bits per lifetime container; 0 disables the range check. */
    unsigned containerBits = 0;
    /**
     * Cap on rows scanned (huge register files); domain-size and
     * split-row checks are skipped when the cap truncates the scan.
     */
    std::uint64_t maxRows = 1 << 14;
};

/**
 * Walk @p array and verify the domain/interleave contract. @p where
 * prefixes finding locations (e.g. "l1 way x2").
 */
void lintPhysicalArray(const PhysicalArray &array,
                       const GeometryLintOptions &opts,
                       const std::string &where, CheckReport &report);

/** Verify @p mode's pattern normalization and group arithmetic. */
void lintFaultModePlacement(const FaultMode &mode,
                            const PhysicalArray &array,
                            const std::string &where,
                            CheckReport &report);

/** Verify @p scheme sanity against a @p domain_bits -bit domain. */
void lintProtectionScheme(const ProtectionScheme &scheme,
                          unsigned domain_bits,
                          const std::string &where, CheckReport &report);

/** Configuration of the exhaustive combo sweep. */
struct ComboLintConfig
{
    /** Prefix for cache combo names (e.g. "l1", "l2"). */
    std::string cacheLabel = "cache";
    CacheGeometry cacheGeom;
    RegFileGeometry regGeom;
    std::vector<unsigned> interleaves = {1, 2, 4};
    /** Lint fault modes 1x1 .. maxMode x1 plus a 2x2 rect. */
    unsigned maxMode = 4;
    std::vector<std::string> schemes = {"none", "parity", "secded",
                                        "dected", "crc"};
};

/**
 * Lint every FaultMode x Layout x ProtectionScheme combination the
 * config spans (all cache styles and register interleavings).
 * Interleave factors that do not divide the relevant dimension are
 * reported (geometry.interleave-divide) and skipped rather than
 * aborting the process.
 */
void lintGeometryCombos(const ComboLintConfig &config,
                        CheckReport &report);

} // namespace mbavf

#endif // MBAVF_CHECK_GEOMETRY_LINT_HH
