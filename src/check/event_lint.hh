/**
 * @file
 * Cache event-stream recording and replay lint.
 *
 * CacheTraceRecorder captures the raw CacheListener callback stream
 * of one cache (in callback order, which is the order the ACE probes
 * consume it). lintCacheEvents then replays the stream through a
 * per-slot residency state machine and flags sequences no correct
 * write-allocate cache can emit: an access or eviction on a slot that
 * holds no line, a fill into an occupied slot, masks or coordinates
 * wider than the configured geometry.
 *
 * Codes reported:
 * - event.bad-slot           set/way outside the geometry
 * - event.read-before-fill   read from a slot holding no line
 * - event.write-before-fill  write into a slot holding no line
 * - event.fill-while-resident fill into an occupied slot
 * - event.double-evict       evict of a slot already evicted
 * - event.evict-without-fill evict of a slot never filled
 * - event.access-too-wide    access spills past the line end
 * - event.mask-too-wide      evict dirty mask wider than the line
 * - event.time-order         a slot's evict clock moves backwards, or
 *                            a fill completes before the eviction
 *                            that freed its slot (access events are
 *                            stamped at data-ready time and carry no
 *                            per-slot ordering invariant)
 */

#ifndef MBAVF_CHECK_EVENT_LINT_HH
#define MBAVF_CHECK_EVENT_LINT_HH

#include <cstdint>
#include <vector>

#include "check/report.hh"
#include "core/layout.hh"
#include "mem/cache.hh"

namespace mbavf
{

/** One recorded cache listener callback. */
struct CacheEvent
{
    enum class Kind : std::uint8_t { Fill, Read, Write, Evict };

    Kind kind = Kind::Fill;
    unsigned set = 0;
    unsigned way = 0;
    /** Line address (Fill/Evict) or byte address (Read/Write). */
    Addr addr = 0;
    /** Access size in bytes (Read/Write only). */
    unsigned size = 0;
    /** Per-byte dirty mask (Evict only). */
    std::uint64_t dirtyBytes = 0;
    Cycle time = 0;
    DefId def = noDef;
};

/** The raw event stream of one cache, in callback order. */
struct CacheEventTrace
{
    CacheGeometry geom;
    std::vector<CacheEvent> events;
};

/** CacheListener that appends every callback to a CacheEventTrace. */
class CacheTraceRecorder : public CacheListener
{
  public:
    explicit CacheTraceRecorder(const CacheGeometry &geom)
    {
        trace_.geom = geom;
    }

    void onFill(unsigned set, unsigned way, Addr line_addr,
                Cycle t) override;
    void onRead(unsigned set, unsigned way, Addr addr, unsigned size,
                Cycle t, DefId def) override;
    void onWrite(unsigned set, unsigned way, Addr addr, unsigned size,
                 Cycle t, InstrTag tag) override;
    void onEvict(unsigned set, unsigned way, Addr line_addr,
                 std::uint64_t dirty_bytes, Cycle t) override;

    const CacheEventTrace &trace() const { return trace_; }
    CacheEventTrace &trace() { return trace_; }

  private:
    CacheEventTrace trace_;
};

/** Display name of an event kind ("fill", "read", ...). */
const char *cacheEventKindName(CacheEvent::Kind kind);

/** Replay @p trace and report protocol violations. */
void lintCacheEvents(const CacheEventTrace &trace, CheckReport &report);

} // namespace mbavf

#endif // MBAVF_CHECK_EVENT_LINT_HH
