#include "check/report.hh"

#include <algorithm>
#include <ostream>

namespace mbavf
{

void
CheckReport::add(LintSeverity severity, std::string code,
                 std::string where, std::string message)
{
    ++total_;
    if (severity == LintSeverity::Error)
        ++errors_;

    auto it = std::find_if(codeCounts_.begin(), codeCounts_.end(),
                           [&](const auto &entry) {
                               return entry.first == code;
                           });
    if (it == codeCounts_.end()) {
        codeCounts_.emplace_back(code, 1);
        it = codeCounts_.end() - 1;
    } else {
        ++it->second;
    }

    if (perCodeLimit_ && it->second > perCodeLimit_)
        return; // counted above, not stored
    findings_.push_back({severity, std::move(code), std::move(where),
                         std::move(message)});
}

std::size_t
CheckReport::countOf(const std::string &code) const
{
    for (const auto &[name, count] : codeCounts_) {
        if (name == code)
            return count;
    }
    return 0;
}

void
CheckReport::print(std::ostream &os) const
{
    for (const Finding &f : findings_) {
        os << lintSeverityName(f.severity) << " [" << f.code << "] "
           << f.where << ": " << f.message << "\n";
    }
    if (clean()) {
        os << "lint: clean (0 findings)\n";
        return;
    }
    os << "lint: " << errorCount() << " error(s), " << warningCount()
       << " warning(s)";
    if (total_ > findings_.size())
        os << " (" << total_ - findings_.size() << " not shown)";
    os << "\n";
    for (const auto &[code, count] : codeCounts_)
        os << "  " << code << ": " << count << "\n";
}

const char *
lintSeverityName(LintSeverity severity)
{
    return severity == LintSeverity::Error ? "error" : "warning";
}

} // namespace mbavf
