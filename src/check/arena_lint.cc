#include "check/arena_lint.hh"

#include <string>

namespace mbavf
{

namespace
{

std::string
wordWhere(const LifetimeArena &arena, std::uint32_t w)
{
    return "container " + std::to_string(arena.wordContainer(w)) +
           " word " + std::to_string(arena.wordIndex(w));
}

} // namespace

void
lintArenaStructure(const LifetimeArena &arena, CheckReport &report)
{
    // Layout: word (offset, count) pairs must tile the segment
    // arrays contiguously in handle order — the build appends words
    // and segments in lockstep, so any gap or overlap is a packing
    // bug (and an out-of-bounds read waiting for the kernel).
    const std::size_t num_segments = arena.numSegments();
    std::uint64_t expected_offset = 0;
    for (std::uint32_t w = 0; w < arena.numWords(); ++w) {
        const std::uint64_t offset = arena.offset(w);
        const std::uint64_t count = arena.count(w);
        if (offset != expected_offset) {
            report.error("arena.offset", wordWhere(arena, w),
                         "offset " + std::to_string(offset) +
                             ", expected " +
                             std::to_string(expected_offset));
        }
        if (count == 0) {
            report.error("arena.offset", wordWhere(arena, w),
                         "empty word materialized in the arena");
        }
        if (offset + count > num_segments) {
            report.error("arena.offset", wordWhere(arena, w),
                         "segments [" + std::to_string(offset) +
                             ", " + std::to_string(offset + count) +
                             ") escape the arena (total " +
                             std::to_string(num_segments) + ")");
            break;
        }
        expected_offset = offset + count;

        const Cycle *begins = arena.begins();
        const Cycle *ends = arena.ends();
        for (std::uint64_t s = offset; s < offset + count; ++s) {
            if (ends[s] <= begins[s]) {
                report.error(
                    "arena.segment-order",
                    wordWhere(arena, w) + " segment " +
                        std::to_string(s - offset),
                    "segment [" + std::to_string(begins[s]) + ", " +
                        std::to_string(ends[s]) +
                        ") empty or backwards");
            }
            if (s > offset && begins[s] < ends[s - 1]) {
                report.error(
                    "arena.segment-order",
                    wordWhere(arena, w) + " segment " +
                        std::to_string(s - offset),
                    "begins at " + std::to_string(begins[s]) +
                        " before predecessor end " +
                        std::to_string(ends[s - 1]));
            }
        }
    }
}

void
lintLifetimeArena(const LifetimeArena &arena,
                  const LifetimeStore &store, CheckReport &report)
{
    if (arena.wordWidth() != store.wordWidth() ||
        arena.wordsPerContainer() != store.wordsPerContainer()) {
        report.error("arena.config", "arena",
                     "arena is " +
                         std::to_string(arena.wordWidth()) + "x" +
                         std::to_string(arena.wordsPerContainer()) +
                         ", store is " +
                         std::to_string(store.wordWidth()) + "x" +
                         std::to_string(store.wordsPerContainer()));
    }

    lintArenaStructure(arena, report);

    const std::size_t num_segments = arena.numSegments();

    // Round trip, arena -> store: every arena word must trace back
    // to a word that exists in the store (segment equality is
    // checked in the store -> arena direction below).
    for (std::uint32_t w = 0; w < arena.numWords(); ++w) {
        auto it = store.containers().find(arena.wordContainer(w));
        if (it == store.containers().end()) {
            report.error("arena.stale-word", wordWhere(arena, w),
                         "container absent from the store");
        } else if (arena.wordIndex(w) >= it->second.words.size()) {
            report.error("arena.stale-word", wordWhere(arena, w),
                         "word index beyond the store container's " +
                             std::to_string(it->second.words.size()) +
                             " word(s)");
        }
    }

    // Round trip, store -> arena: every non-empty store word must
    // resolve to an arena word carrying exactly the same segments.
    for (const auto &[id, container] : store.containers()) {
        for (std::size_t word = 0; word < container.words.size();
             ++word) {
            const WordLifetime &life = container.words[word];
            const std::string where =
                "container " + std::to_string(id) + " word " +
                std::to_string(word);
            // findWord() answers noWord above the configured width;
            // resolving such words through it would mask the
            // lifetime.word-count finding, so they are pinned to
            // noWord here and left to that check.
            const std::uint32_t handle =
                word < store.wordsPerContainer()
                    ? arena.findWord(id,
                                     static_cast<unsigned>(word))
                    : LifetimeArena::noWord;
            if (life.empty()) {
                if (handle != LifetimeArena::noWord) {
                    report.error("arena.stale-word", where,
                                 "store word is empty but the arena "
                                 "holds " +
                                     std::to_string(
                                         arena.count(handle)) +
                                     " segment(s)");
                }
                continue;
            }
            if (handle == LifetimeArena::noWord) {
                report.error("arena.missing-word", where,
                             "non-empty store word has no arena "
                             "handle");
                continue;
            }
            if (arena.wordContainer(handle) != id ||
                arena.wordIndex(handle) != word) {
                report.error(
                    "arena.missing-word", where,
                    "handle resolves to container " +
                        std::to_string(arena.wordContainer(handle)) +
                        " word " +
                        std::to_string(arena.wordIndex(handle)));
                continue;
            }
            const auto &segs = life.segments();
            if (arena.count(handle) != segs.size()) {
                report.error(
                    "arena.stale-word", where,
                    "arena holds " +
                        std::to_string(arena.count(handle)) +
                        " segment(s), store has " +
                        std::to_string(segs.size()));
                continue;
            }
            const std::uint32_t base = arena.offset(handle);
            for (std::size_t s = 0; s < segs.size(); ++s) {
                const std::uint32_t slot =
                    base + static_cast<std::uint32_t>(s);
                if (slot >= num_segments)
                    break; // already reported as arena.offset
                if (arena.begins()[slot] != segs[s].begin ||
                    arena.ends()[slot] != segs[s].end ||
                    arena.masks()[slot].ace != segs[s].aceMask ||
                    arena.masks()[slot].read != segs[s].readMask) {
                    report.error("arena.stale-word",
                                 where + " segment " +
                                     std::to_string(s),
                                 "arena segment differs from the "
                                 "store (stale snapshot?)");
                }
                // Untagged (version-1) arenas have no tag column to
                // compare; a present column must match the store.
                if (arena.tags() &&
                    arena.tags()[slot] != segs[s].tag) {
                    report.error("arena.stale-tag",
                                 where + " segment " +
                                     std::to_string(s),
                                 "arena attribution tag differs from "
                                 "the store (stale snapshot?)");
                }
            }
        }
    }
}

} // namespace mbavf
