#include "check/lifetime_lint.hh"

#include <string>

#include "common/bits.hh"

namespace mbavf
{

namespace
{

std::string
segmentLoc(const std::string &where, std::size_t index)
{
    std::string loc = where;
    loc += " segment ";
    loc += std::to_string(index);
    return loc;
}

// Built with += rather than an operator+ chain: g++ 12's -Wrestrict
// false-fires on concatenation chains involving to_string results.
std::string
describe(const LifeSegment &seg)
{
    std::string s = "[";
    s += std::to_string(seg.begin);
    s += ", ";
    s += std::to_string(seg.end);
    s += ")";
    return s;
}

} // namespace

void
lintWordLifetime(const WordLifetime &word, unsigned word_width,
                 const LifetimeLintOptions &opts,
                 const std::string &where, CheckReport &report)
{
    const std::uint64_t width_mask = lowMask(word_width);
    const auto &segs = word.segments();

    for (std::size_t i = 0; i < segs.size(); ++i) {
        const LifeSegment &seg = segs[i];

        if (seg.end < seg.begin) {
            report.error("lifetime.backwards", segmentLoc(where, i),
                         "segment " + describe(seg) + " runs backwards");
        } else if (seg.end == seg.begin) {
            report.error("lifetime.empty-segment", segmentLoc(where, i),
                         "segment " + describe(seg) + " is empty");
        }

        if (i > 0) {
            const LifeSegment &prev = segs[i - 1];
            if (seg.begin < prev.begin) {
                report.error("lifetime.unsorted", segmentLoc(where, i),
                             "segment " + describe(seg) +
                                 " begins before predecessor " +
                                 describe(prev));
            } else if (seg.begin < prev.end) {
                report.error("lifetime.overlap", segmentLoc(where, i),
                             "segment " + describe(seg) +
                                 " overlaps predecessor " +
                                 describe(prev));
            }
        }

        if (opts.horizon && seg.end > opts.horizon) {
            report.error("lifetime.horizon", segmentLoc(where, i),
                         "segment " + describe(seg) +
                             " extends past horizon " +
                             std::to_string(opts.horizon));
        }

        if ((seg.aceMask | seg.readMask) & ~width_mask) {
            report.error("lifetime.mask-width", segmentLoc(where, i),
                         "mask bits beyond word width " +
                             std::to_string(word_width));
        }

        if (opts.requireAceSubsetRead && (seg.aceMask & ~seg.readMask)) {
            report.error("lifetime.ace-not-read", segmentLoc(where, i),
                         "aceMask has bits outside readMask (AceLive "
                         "bits must be read out)");
        }
    }
}

void
lintLifetimeStore(const LifetimeStore &store,
                  const LifetimeLintOptions &opts, CheckReport &report)
{
    for (const auto &[id, container] : store.containers()) {
        const std::string cloc = "container " + std::to_string(id);
        if (container.words.size() != store.wordsPerContainer()) {
            report.error("lifetime.word-count", cloc,
                         std::to_string(container.words.size()) +
                             " words, store configured for " +
                             std::to_string(store.wordsPerContainer()));
        }
        for (std::size_t w = 0; w < container.words.size(); ++w) {
            lintWordLifetime(container.words[w], store.wordWidth(),
                             opts, cloc + " word " + std::to_string(w),
                             report);
        }
    }
}

} // namespace mbavf
