#include "check/event_lint.hh"

#include <string>

#include "common/bits.hh"

namespace mbavf
{

void
CacheTraceRecorder::onFill(unsigned set, unsigned way, Addr line_addr,
                           Cycle t)
{
    trace_.events.push_back(
        {CacheEvent::Kind::Fill, set, way, line_addr, 0, 0, t, noDef});
}

void
CacheTraceRecorder::onRead(unsigned set, unsigned way, Addr addr,
                           unsigned size, Cycle t, DefId def)
{
    trace_.events.push_back(
        {CacheEvent::Kind::Read, set, way, addr, size, 0, t, def});
}

void
CacheTraceRecorder::onWrite(unsigned set, unsigned way, Addr addr,
                            unsigned size, Cycle t, InstrTag)
{
    trace_.events.push_back(
        {CacheEvent::Kind::Write, set, way, addr, size, 0, t, noDef});
}

void
CacheTraceRecorder::onEvict(unsigned set, unsigned way, Addr line_addr,
                            std::uint64_t dirty_bytes, Cycle t)
{
    trace_.events.push_back({CacheEvent::Kind::Evict, set, way,
                             line_addr, 0, dirty_bytes, t, noDef});
}

const char *
cacheEventKindName(CacheEvent::Kind kind)
{
    switch (kind) {
      case CacheEvent::Kind::Fill: return "fill";
      case CacheEvent::Kind::Read: return "read";
      case CacheEvent::Kind::Write: return "write";
      case CacheEvent::Kind::Evict: return "evict";
    }
    return "?";
}

void
lintCacheEvents(const CacheEventTrace &trace, CheckReport &report)
{
    const CacheGeometry &geom = trace.geom;

    /** Replay state of one physical line slot. */
    struct SlotState
    {
        bool resident = false;
        bool everFilled = false;
        Cycle lastEvictTime = 0;
        bool everEvicted = false;
    };
    std::vector<SlotState> slots(std::size_t(geom.sets) * geom.ways);

    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const CacheEvent &e = trace.events[i];
        const std::string where =
            std::string(cacheEventKindName(e.kind)) + " #" +
            std::to_string(i) + " (set " + std::to_string(e.set) +
            " way " + std::to_string(e.way) + " @" +
            std::to_string(e.time) + ")";

        if (e.set >= geom.sets || e.way >= geom.ways) {
            report.error("event.bad-slot", where,
                         "slot outside " + std::to_string(geom.sets) +
                             "x" + std::to_string(geom.ways) +
                             " geometry");
            continue;
        }
        SlotState &slot =
            slots[std::size_t(e.set) * geom.ways + e.way];

        // Access events are stamped at their data-ready time
        // (request + miss latency), so within a slot they are not
        // monotonic in callback order: a missing read completes
        // after same-cycle hits on the line it brought in. Two
        // orderings ARE invariant: evicts carry the request-time
        // clock, which only moves forward, and a fill's data-ready
        // time cannot precede the eviction that freed its slot.
        switch (e.kind) {
          case CacheEvent::Kind::Fill:
            if (slot.everEvicted && e.time < slot.lastEvictTime) {
                report.error("event.time-order", where,
                             "fill completes before the eviction that "
                             "freed the slot (at " +
                                 std::to_string(slot.lastEvictTime) +
                                 ")");
            }
            if (slot.resident) {
                report.error("event.fill-while-resident", where,
                             "fill into a slot still holding a line "
                             "(missing eviction)");
            }
            slot.resident = true;
            slot.everFilled = true;
            break;

          case CacheEvent::Kind::Read:
          case CacheEvent::Kind::Write: {
            const bool is_read = e.kind == CacheEvent::Kind::Read;
            if (!slot.resident) {
                report.error(is_read ? "event.read-before-fill"
                                     : "event.write-before-fill",
                             where,
                             "access to a slot holding no line");
            }
            const Addr offset = e.addr % geom.lineBytes;
            if (e.size == 0 || offset + e.size > geom.lineBytes) {
                report.error("event.access-too-wide", where,
                             "access of " + std::to_string(e.size) +
                                 " byte(s) at line offset " +
                                 std::to_string(offset) +
                                 " spills past the " +
                                 std::to_string(geom.lineBytes) +
                                 "-byte line");
            }
            break;
          }

          case CacheEvent::Kind::Evict:
            if (slot.everEvicted && e.time < slot.lastEvictTime) {
                report.error("event.time-order", where,
                             "evict clock moves backwards (previous "
                             "eviction at " +
                                 std::to_string(slot.lastEvictTime) +
                                 ")");
            }
            slot.lastEvictTime = e.time;
            slot.everEvicted = true;
            if (!slot.resident) {
                report.error(slot.everFilled
                                 ? "event.double-evict"
                                 : "event.evict-without-fill",
                             where,
                             slot.everFilled
                                 ? "slot already evicted"
                                 : "slot was never filled");
            }
            if (e.dirtyBytes & ~lowMask(geom.lineBytes)) {
                report.error("event.mask-too-wide", where,
                             "dirty mask has bytes beyond the " +
                                 std::to_string(geom.lineBytes) +
                                 "-byte line");
            }
            slot.resident = false;
            break;
        }
    }
}

} // namespace mbavf
