/**
 * @file
 * Structural lint of a LifetimeArena against its source store.
 *
 * The multi-mode sweep kernel trusts the arena blindly: word handles
 * index the offset table, (offset, count) pairs index the flat
 * segment arrays, and segments are assumed sorted and disjoint
 * because the source WordLifetime was. A stale snapshot (store
 * mutated after the arena was built) or a packing bug silently
 * corrupts every AVF number downstream, so this pass re-derives the
 * invariants from scratch:
 *
 * Codes reported:
 * - arena.config          word width / words-per-container mismatch
 * - arena.offset          word offsets not contiguous-monotone, or
 *                         (offset, count) escapes the segment arrays
 * - arena.segment-order   a word's flat segments unsorted, empty,
 *                         backwards, or overlapping
 * - arena.missing-word    store has a non-empty word the arena
 *                         cannot find (or maps to the wrong slot)
 * - arena.stale-word      arena word absent from the store, or its
 *                         segments differ from the store's
 * - arena.stale-tag       a tagged arena's attribution column
 *                         differs from the store's segment tags
 *
 * The structure-only entry point covers the first three codes and
 * needs no store — it is what `mbavf_lint --arena=FILE` runs on an
 * arena loaded from disk (the file loader already validated the
 * byte-level framing; this pass re-derives the semantic layout
 * invariants the kernel trusts). The file loader's own rejections
 * surface as `arena.file` in the tool.
 */

#ifndef MBAVF_CHECK_ARENA_LINT_HH
#define MBAVF_CHECK_ARENA_LINT_HH

#include "check/report.hh"
#include "core/lifetime.hh"
#include "core/lifetime_arena.hh"

namespace mbavf
{

/** Lint @p arena's internal layout and its fidelity to @p store. */
void lintLifetimeArena(const LifetimeArena &arena,
                       const LifetimeStore &store,
                       CheckReport &report);

/** Layout-only lint for arenas with no source store (file mode). */
void lintArenaStructure(const LifetimeArena &arena,
                        CheckReport &report);

} // namespace mbavf

#endif // MBAVF_CHECK_ARENA_LINT_HH
