/**
 * @file
 * Structural lint of ACE lifetime stores.
 *
 * A WordLifetime is only meaningful when its segments are sorted,
 * disjoint, non-empty, and confined to the trace horizon, and when
 * every AceLive bit is also a read bit (AceLive means "a live
 * consumption reads this bit out", so aceMask ⊆ readMask by
 * construction of the backward pass). Violations make the overlap
 * classification in the MB-AVF engine (Eq. 2-7 of the paper) silently
 * wrong, so they are surfaced here as hard lint errors.
 *
 * Codes reported:
 * - lifetime.backwards      segment with end < begin
 * - lifetime.empty-segment  segment with end == begin
 * - lifetime.unsorted       segment begins before its predecessor
 * - lifetime.overlap        segment overlaps its predecessor
 * - lifetime.horizon        segment extends past the trace horizon
 * - lifetime.mask-width     ace/read mask has bits >= word width
 * - lifetime.ace-not-read   aceMask bit outside readMask
 * - lifetime.word-count     container word count != store config
 */

#ifndef MBAVF_CHECK_LIFETIME_LINT_HH
#define MBAVF_CHECK_LIFETIME_LINT_HH

#include <string>

#include "check/report.hh"
#include "core/lifetime.hh"

namespace mbavf
{

/** Knobs for the lifetime lint pass. */
struct LifetimeLintOptions
{
    /** End of the trace window; 0 disables the horizon check. */
    Cycle horizon = 0;
    /**
     * Enforce aceMask ⊆ readMask. On for builder-produced stores;
     * turn off for hand-built stores that only model ACE bits.
     */
    bool requireAceSubsetRead = true;
};

/**
 * Lint one word's segment list. @p where prefixes finding locations
 * (e.g. "container 3 word 2").
 */
void lintWordLifetime(const WordLifetime &word, unsigned word_width,
                      const LifetimeLintOptions &opts,
                      const std::string &where, CheckReport &report);

/** Lint every word of every container in @p store. */
void lintLifetimeStore(const LifetimeStore &store,
                       const LifetimeLintOptions &opts,
                       CheckReport &report);

} // namespace mbavf

#endif // MBAVF_CHECK_LIFETIME_LINT_HH
