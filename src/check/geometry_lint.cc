#include "check/geometry_lint.hh"

#include <algorithm>
#include <unordered_map>

namespace mbavf
{

namespace
{

std::string
cellLoc(const std::string &where, std::uint64_t row, std::uint64_t col)
{
    return where + " (row " + std::to_string(row) + " col " +
           std::to_string(col) + ")";
}

/** First-seen position and population of one protection domain. */
struct DomainInfo
{
    std::uint64_t firstRow = 0;
    std::uint64_t firstCol = 0;
    std::uint64_t bits = 0;
};

} // namespace

void
lintPhysicalArray(const PhysicalArray &array,
                  const GeometryLintOptions &opts,
                  const std::string &where, CheckReport &report)
{
    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const unsigned ileave = std::max(1u, opts.interleave);

    if (rows == 0 || cols == 0) {
        report.error("geometry.empty-array", where,
                     std::to_string(rows) + "x" + std::to_string(cols) +
                         " array has no cells");
        return;
    }
    if (cols % ileave != 0) {
        report.error("geometry.interleave-row-width", where,
                     "interleave " + std::to_string(ileave) +
                         " does not divide row width " +
                         std::to_string(cols));
    }

    const std::uint64_t scan_rows = std::min(rows, opts.maxRows);
    const bool truncated = scan_rows < rows;

    std::unordered_map<DomainId, DomainInfo> domains;
    for (std::uint64_t r = 0; r < scan_rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            const PhysBit bit = array.at(r, c);

            if (bit.domain == invalidDomain) {
                report.error("geometry.invalid-domain", cellLoc(where, r, c),
                             "cell maps to no protection domain");
                continue;
            }
            if (opts.containerBits &&
                bit.bitInContainer >= opts.containerBits) {
                report.error("geometry.bit-out-of-container",
                             cellLoc(where, r, c),
                             "bit " + std::to_string(bit.bitInContainer) +
                                 " outside the " +
                                 std::to_string(opts.containerBits) +
                                 "-bit container");
            }

            auto [it, fresh] =
                domains.try_emplace(bit.domain, DomainInfo{r, c, 0});
            DomainInfo &info = it->second;
            ++info.bits;
            if (fresh)
                continue;
            if (info.firstRow != r) {
                report.error("geometry.domain-split-rows",
                             cellLoc(where, r, c),
                             "domain " + std::to_string(bit.domain) +
                                 " already seen in row " +
                                 std::to_string(info.firstRow));
                // Re-anchor so one split domain is flagged once per
                // row, not once per cell.
                info.firstRow = r;
                info.firstCol = c;
                continue;
            }
            if ((c - info.firstCol) % ileave != 0) {
                report.error(
                    "geometry.domain-straddle", cellLoc(where, r, c),
                    "domain " + std::to_string(bit.domain) +
                        " also owns col " +
                        std::to_string(info.firstCol) +
                        "; bits of one domain must sit " +
                        std::to_string(ileave) + " columns apart");
            }
        }
    }

    if (truncated) {
        // The per-cell checks above still covered the scanned prefix.
        return;
    }
    std::uint64_t expected = domains.empty()
        ? 0
        : domains.begin()->second.bits;
    for (const auto &[id, info] : domains) {
        if (info.bits != expected) {
            report.error("geometry.domain-size-mismatch", where,
                         "domain " + std::to_string(id) + " has " +
                             std::to_string(info.bits) +
                             " bit(s), others have " +
                             std::to_string(expected));
            break; // one mismatch implies many; keep the report short
        }
    }
}

void
lintFaultModePlacement(const FaultMode &mode, const PhysicalArray &array,
                       const std::string &where, CheckReport &report)
{
    const std::string loc = where + " mode " + mode.name();

    std::int32_t min_r = 0, min_c = 0, max_r = 0, max_c = 0;
    bool first = true;
    for (const PatternOffset &o : mode.offsets()) {
        if (first) {
            min_r = max_r = o.dRow;
            min_c = max_c = o.dCol;
            first = false;
            continue;
        }
        min_r = std::min(min_r, o.dRow);
        min_c = std::min(min_c, o.dCol);
        max_r = std::max(max_r, o.dRow);
        max_c = std::max(max_c, o.dCol);
    }
    if (min_r != 0 || min_c != 0 || max_r != mode.maxDRow() ||
        max_c != mode.maxDCol()) {
        report.error("geometry.mode-offsets", loc,
                     "pattern offsets are not normalized to a zero "
                     "minimum / reported maximum");
    }

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const std::uint64_t span_r = std::uint64_t(mode.maxDRow()) + 1;
    const std::uint64_t span_c = std::uint64_t(mode.maxDCol()) + 1;
    const std::uint64_t groups = mode.numGroups(rows, cols);

    if (span_r > rows || span_c > cols) {
        if (groups != 0) {
            report.error("geometry.mode-groups-mismatch", loc,
                         "mode does not fit the array but reports " +
                             std::to_string(groups) + " group(s)");
        } else {
            report.warning("geometry.mode-no-groups", loc,
                           "mode is larger than the " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols) + " array");
        }
        return;
    }
    const std::uint64_t expected =
        (rows - span_r + 1) * (cols - span_c + 1);
    if (groups != expected) {
        report.error("geometry.mode-groups-mismatch", loc,
                     "numGroups reports " + std::to_string(groups) +
                         ", placement arithmetic expects " +
                         std::to_string(expected));
    }
}

void
lintProtectionScheme(const ProtectionScheme &scheme,
                     unsigned domain_bits, const std::string &where,
                     CheckReport &report)
{
    const std::string loc = where + " scheme " + scheme.name();
    if (domain_bits == 0) {
        report.error("geometry.scheme-domain", loc,
                     "protection domain holds no bits");
        return;
    }
    if (scheme.action(0) != FaultAction::Corrected) {
        report.error("geometry.scheme-zero-flips", loc,
                     "scheme reacts to zero flipped bits");
    }
}

void
lintGeometryCombos(const ComboLintConfig &config, CheckReport &report)
{
    struct Combo
    {
        std::string name;
        std::unique_ptr<PhysicalArray> array;
        unsigned interleave;
        unsigned containerBits;
        unsigned domainBits;
    };
    std::vector<Combo> combos;

    const CacheGeometry &cg = config.cacheGeom;
    for (CacheInterleave style :
         {CacheInterleave::Logical, CacheInterleave::WayPhysical,
          CacheInterleave::IndexPhysical}) {
        for (unsigned ileave : config.interleaves) {
            const std::string name = config.cacheLabel + " " +
                cacheInterleaveName(style) + " x" +
                std::to_string(ileave);
            if (ileave == 0 ||
                (style == CacheInterleave::WayPhysical &&
                 cg.ways % ileave != 0) ||
                (style == CacheInterleave::IndexPhysical &&
                 cg.sets % ileave != 0) ||
                (style == CacheInterleave::Logical &&
                 cg.lineBits() % ileave != 0)) {
                report.error("geometry.interleave-divide", name,
                             "interleave factor incompatible with the "
                             "cache geometry");
                continue;
            }
            // Under logical interleaving each line carries I check
            // words, so one domain covers lineBits / I bits; the
            // physical styles keep one domain per whole line.
            unsigned domain_bits = style == CacheInterleave::Logical
                ? cg.lineBits() / ileave
                : cg.lineBits();
            combos.push_back({name, makeCacheArray(cg, style, ileave),
                              ileave, cg.lineBits(), domain_bits});
        }
    }

    const RegFileGeometry &rg = config.regGeom;
    for (RegInterleave style :
         {RegInterleave::IntraThread, RegInterleave::InterThread}) {
        const bool intra = style == RegInterleave::IntraThread;
        for (unsigned ileave : config.interleaves) {
            const std::string name = std::string("vgpr ") +
                (intra ? "intra" : "inter") + " x" +
                std::to_string(ileave);
            if (ileave == 0 ||
                (intra ? rg.numRegs % ileave : rg.numLanes % ileave)) {
                report.error("geometry.interleave-divide", name,
                             "interleave factor incompatible with the "
                             "register file geometry");
                continue;
            }
            combos.push_back({name,
                              makeRegFileArray(rg, style, ileave),
                              ileave, rg.regBits, rg.regBits});
        }
    }

    std::vector<FaultMode> modes;
    for (unsigned m = 1; m <= std::max(1u, config.maxMode); ++m)
        modes.push_back(FaultMode::mx1(m));
    modes.push_back(FaultMode::rect(2, 2));

    for (const Combo &combo : combos) {
        GeometryLintOptions opts;
        opts.interleave = combo.interleave;
        opts.containerBits = combo.containerBits;
        lintPhysicalArray(*combo.array, opts, combo.name, report);

        for (const FaultMode &mode : modes)
            lintFaultModePlacement(mode, *combo.array, combo.name,
                                   report);

        for (const std::string &scheme_name : config.schemes) {
            auto scheme = makeScheme(scheme_name);
            lintProtectionScheme(*scheme, combo.domainBits,
                                 combo.name, report);
        }
    }
}

} // namespace mbavf
