/**
 * @file
 * Diagnostic collection for the mbavf static lint passes.
 *
 * Every lint check reports through a CheckReport: a flat list of
 * findings, each carrying a stable dotted code (e.g.
 * "lifetime.overlap"), the location of the offending artifact, and a
 * human-readable message. Stable codes let tests assert on the exact
 * diagnostic produced and let the CLI summarize per-code counts
 * without string matching on prose.
 */

#ifndef MBAVF_CHECK_REPORT_HH
#define MBAVF_CHECK_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mbavf
{

/** Severity of a lint finding. */
enum class LintSeverity : std::uint8_t
{
    /** Suspicious but not provably wrong; does not fail a lint run. */
    Warning,
    /** Violates a model invariant; fails the lint run. */
    Error,
};

/** One lint diagnostic. */
struct Finding
{
    LintSeverity severity = LintSeverity::Error;
    /** Stable dotted identifier, e.g. "event.read-before-fill". */
    std::string code;
    /** Artifact location, e.g. "container 12 word 3 segment 5". */
    std::string where;
    std::string message;
};

/** Accumulator for lint findings across passes. */
class CheckReport
{
  public:
    /**
     * Record a finding. Per-code recording is capped (see
     * setPerCodeLimit); findings beyond the cap are counted but not
     * stored, so a systemic corruption cannot flood memory.
     */
    void add(LintSeverity severity, std::string code,
             std::string where, std::string message);

    void
    error(std::string code, std::string where, std::string message)
    {
        add(LintSeverity::Error, std::move(code), std::move(where),
            std::move(message));
    }

    void
    warning(std::string code, std::string where, std::string message)
    {
        add(LintSeverity::Warning, std::move(code), std::move(where),
            std::move(message));
    }

    /** Stored findings (up to the per-code cap each). */
    const std::vector<Finding> &findings() const { return findings_; }

    /** Total findings seen, including ones dropped by the cap. */
    std::size_t totalCount() const { return total_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return total_ - errors_; }

    bool clean() const { return total_ == 0; }

    /** Total findings recorded under @p code (dropped ones included). */
    std::size_t countOf(const std::string &code) const;

    /** True when at least one finding carries @p code. */
    bool has(const std::string &code) const { return countOf(code) > 0; }

    /**
     * Cap on stored findings per code (default 16). The per-code
     * totals keep counting past the cap.
     */
    void setPerCodeLimit(std::size_t limit) { perCodeLimit_ = limit; }

    /** Print all stored findings plus a per-code summary. */
    void print(std::ostream &os) const;

  private:
    std::vector<Finding> findings_;
    /** code -> (total, errors) for every code ever reported. */
    std::vector<std::pair<std::string, std::size_t>> codeCounts_;
    std::size_t total_ = 0;
    std::size_t errors_ = 0;
    std::size_t perCodeLimit_ = 16;
};

/** Display name of a severity ("warning" / "error"). */
const char *lintSeverityName(LintSeverity severity);

} // namespace mbavf

#endif // MBAVF_CHECK_REPORT_HH
