#include "serve/supervisor.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <vector>

#include "common/journal_io.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/heartbeat.hh"
#include "obs/manifest.hh"
#include "obs/report.hh"
#include "serve/cache.hh"
#include "serve/queue.hh"
#include "serve/shard.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{

namespace
{

namespace fs = std::filesystem;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
shardResultPath(const std::string &state_dir, std::uint64_t shard)
{
    return state_dir + "/shard_" + std::to_string(shard) + ".json";
}

/** Parse + validate one worker result file. */
bool
loadShardResult(const std::string &path, std::uint64_t shard,
                const std::string &canonical, obs::JsonValue &result,
                std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    const std::string text((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    obs::JsonValue doc;
    if (!obs::JsonValue::parse(text, doc, error)) {
        error = path + ": " + error;
        return false;
    }
    const obs::JsonValue *schema = doc.find("schema");
    const obs::JsonValue *recorded = doc.find("shard");
    const obs::JsonValue *config = doc.find("canonical");
    const obs::JsonValue *stored = doc.find("result");
    if (!schema || !schema->isString() ||
        schema->asString() != "mbavf-shard" || !recorded ||
        recorded->asUint() != shard || !config ||
        !config->isString() || config->asString() != canonical ||
        !stored) {
        error = path + ": not a result for this shard";
        return false;
    }
    result = *stored;
    return true;
}

/** One in-flight worker process. */
struct RunningWorker
{
    std::uint64_t shard = 0;
    pid_t pid = -1;
    std::uint64_t deadlineMs = 0; ///< 0 = no watchdog
    bool watchdogFired = false;
};

/** Per-shard scheduling state the supervisor tracks in memory. */
struct ShardTrack
{
    unsigned attempts = 0;
    std::uint64_t readyAtMs = 0;
    bool terminal = false;
    bool running = false;
    std::string lastFailure;
};

/**
 * Fork + exec one worker for @p shard. Returns -1 when the fork
 * itself fails (treated like a crashed attempt).
 */
pid_t
spawnWorker(const ServeOptions &options, std::uint64_t shard,
            const std::string &out_path)
{
    std::vector<std::string> argv_strings;
    argv_strings.push_back(options.workerExe);
    argv_strings.push_back("--worker");
    argv_strings.push_back("--spec=" + options.specPath);
    argv_strings.push_back("--shard=" + std::to_string(shard));
    argv_strings.push_back("--out=" + out_path);
    if (options.threadsPerWorker) {
        argv_strings.push_back(
            "--threads=" +
            std::to_string(options.threadsPerWorker));
    }
    std::vector<char *> argv;
    for (std::string &arg : argv_strings)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        // Child: a fresh exec gives the shard a clean address space
        // (no inherited pool threads, safe under sanitizers).
        ::execv(options.workerExe.c_str(), argv.data());
        std::fprintf(stderr, "serve: cannot exec %s\n",
                     options.workerExe.c_str());
        ::_exit(127);
    }
    return pid;
}

/** Map a reaped worker's status to a stable failure code. */
std::string
failureCode(const RunningWorker &worker, int status)
{
    if (worker.watchdogFired)
        return "serve.hang";
    if (WIFSIGNALED(status))
        return "serve.crash";
    if (WIFEXITED(status) && WEXITSTATUS(status) == 3)
        return "serve.config";
    return "serve.error";
}

/** The deterministic merged document (see file comment). */
obs::JsonValue
buildMergedManifest(const JobSpec &spec, std::uint64_t spec_hash,
                    const std::vector<ShardSpec> &shards,
                    const std::map<std::uint64_t, obs::JsonValue>
                        &results,
                    const QueueJournal &journal)
{
    obs::Manifest manifest("mbavf_serve");

    obs::JsonValue spec_section = obs::JsonValue::object();
    spec_section.set("hash", hex64(spec_hash));
    spec_section.set("shards",
                     obs::JsonValue(std::uint64_t(shards.size())));
    obs::JsonValue jobs = obs::JsonValue::array();
    for (const JobConfig &job : spec.jobs)
        jobs.push(obs::JsonValue(job.canonical()));
    spec_section.set("jobs", std::move(jobs));
    manifest.set("spec", std::move(spec_section));

    obs::JsonValue out_results = obs::JsonValue::array();
    for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
        const JobConfig &job = spec.jobs[j];
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("job", obs::JsonValue(std::uint64_t(j)));
        entry.set("type", jobTypeName(job.type));
        entry.set("canonical", job.canonical());

        std::vector<obs::JsonValue> done;
        std::uint64_t missing = 0;
        for (std::uint64_t s = 0; s < shards.size(); ++s) {
            if (shards[s].job != j)
                continue;
            const auto it = results.find(s);
            if (it == results.end())
                ++missing;
            else
                done.push_back(it->second);
        }
        entry.set("complete", obs::JsonValue(missing == 0));
        if (job.type == JobType::Sweep) {
            if (!done.empty()) {
                const obs::JsonValue &result = done.front();
                if (const obs::JsonValue *avf = result.find("avf"))
                    entry.set("avf", *avf);
                if (const obs::JsonValue *ser = result.find("ser"))
                    entry.set("ser", *ser);
            }
        } else {
            entry.set("campaign", mergeCampaignShards(done));
            if (job.stratify && !done.empty()) {
                obs::JsonValue strata;
                std::string merge_error;
                if (mergeStratifiedStrata(job, done, strata,
                                          merge_error))
                    entry.set("strata", std::move(strata));
                else
                    entry.set("strata_error", merge_error);
            }
        }
        out_results.push(std::move(entry));
    }
    manifest.set("results", std::move(out_results));

    // Always present (empty on a clean run) so the manifest schema
    // is stable for golden structure diffs.
    obs::JsonValue degraded = obs::JsonValue::array();
    for (const QueueRecord &record : journal.records) {
        if (record.state != ShardState::Quarantined)
            continue;
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("shard", obs::JsonValue(record.shard));
        entry.set("job",
                  obs::JsonValue(std::uint64_t(
                      shards[static_cast<std::size_t>(record.shard)]
                          .job)));
        entry.set("attempts", obs::JsonValue(record.attempts));
        entry.set("code", record.code);
        degraded.push(std::move(entry));
    }
    manifest.set("degraded", std::move(degraded));

    // Deliberately no captureObservations()/setEnv(): everything in
    // this document is deterministic, so runs can be cmp'd.
    return manifest.root();
}

} // namespace

std::uint64_t
backoffDelayMs(double base_seconds, unsigned attempt,
               std::uint64_t spec_hash, std::uint64_t shard)
{
    const double base_ms = std::max(0.0, base_seconds * 1000.0);
    const double scaled =
        base_ms * static_cast<double>(1ull << std::min(attempt - 1u,
                                                       20u));
    const std::uint64_t delay =
        static_cast<std::uint64_t>(scaled);
    const std::uint64_t jitter_span = delay / 4 + 1;
    const std::uint64_t jitter =
        splitMix64(spec_hash, shard * 97 + attempt) % jitter_span;
    return delay + jitter;
}

int
runWorker(const std::string &spec_path, std::uint64_t shard_index,
          const std::string &out_path)
{
    JobSpec spec;
    std::string error;
    if (!JobSpec::load(spec_path, spec, error)) {
        std::fprintf(stderr, "serve worker: %s\n", error.c_str());
        return 3;
    }
    const std::vector<ShardSpec> shards = shardJobs(spec);
    if (shard_index >= shards.size()) {
        std::fprintf(stderr,
                     "serve worker: shard %llu out of range\n",
                     static_cast<unsigned long long>(shard_index));
        return 3;
    }
    const ShardSpec &shard =
        shards[static_cast<std::size_t>(shard_index)];
    const JobConfig &config = spec.jobs[shard.job];

    obs::JsonValue result;
    if (!runShard(config, shard, result, error)) {
        std::fprintf(stderr, "serve worker: %s\n", error.c_str());
        return 3;
    }

    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", "mbavf-shard");
    doc.set("shard", obs::JsonValue(shard_index));
    doc.set("canonical", shard.canonical(config));
    doc.set("result", std::move(result));
    if (!atomicWriteFile(out_path, doc.dump(1) + "\n", error)) {
        std::fprintf(stderr, "serve worker: %s\n", error.c_str());
        return 3;
    }
    return 0;
}

ServeOutcome
runService(const ServeOptions &options)
{
    ServeOutcome outcome;
    const auto fail = [&outcome](const std::string &message) {
        std::cerr << "mbavf_serve: " << message << "\n";
        outcome.exitCode = 2;
        return outcome;
    };

    JobSpec spec;
    std::string error;
    if (!JobSpec::load(options.specPath, spec, error))
        return fail(error);
    std::uint64_t spec_hash = 0;
    if (!spec.hash(spec_hash, error))
        return fail(error);
    const std::vector<ShardSpec> shards = shardJobs(spec);
    outcome.shardsTotal = shards.size();

    std::error_code ec;
    fs::create_directories(options.stateDir, ec);
    if (ec) {
        return fail("cannot create state dir '" + options.stateDir +
                    "': " + ec.message());
    }
    const std::string queue_path =
        options.stateDir + "/queue.journal";

    QueueJournal journal;
    journal.specHash = spec_hash;
    journal.numShards = shards.size();
    const bool queue_exists = fs::exists(queue_path);
    if (queue_exists && !options.resume) {
        return fail("queue journal '" + queue_path +
                    "' already exists; use --resume to continue it "
                    "or remove the state directory");
    }
    if (options.resume && queue_exists) {
        if (!QueueJournal::load(queue_path, journal, error))
            return fail("cannot resume: " + error);
        if (journal.specHash != spec_hash ||
            journal.numShards != shards.size()) {
            return fail(
                "queue journal '" + queue_path +
                "' is bound to a different spec (hash " +
                hex64(journal.specHash) + ", expected " +
                hex64(spec_hash) + ")");
        }
    }

    ResultCache cache(options.cacheDir);

    // Reload durable results for done shards; a record whose result
    // went missing or corrupt is dropped so the shard re-runs.
    std::map<std::uint64_t, obs::JsonValue> results;
    std::uint64_t resumed_run = 0, resumed_cache = 0,
                  resumed_quarantined = 0;
    {
        std::vector<QueueRecord> kept;
        for (QueueRecord &record : journal.records) {
            if (record.state == ShardState::Quarantined) {
                ++resumed_quarantined;
                kept.push_back(std::move(record));
                continue;
            }
            const std::uint64_t s = record.shard;
            const std::string canonical =
                shards[static_cast<std::size_t>(s)].canonical(
                    spec.jobs[shards[static_cast<std::size_t>(s)]
                                  .job]);
            obs::JsonValue result;
            bool ok = false;
            if (record.source == "cache") {
                std::uint64_t key = 0;
                std::string diagnostic;
                ok = ResultCache::shardKey(
                         spec.jobs[shards[static_cast<std::size_t>(
                                              s)]
                                       .job],
                         shards[static_cast<std::size_t>(s)], key,
                         error) &&
                     cache.lookup(key, canonical, result,
                                  diagnostic);
            } else {
                ok = loadShardResult(
                    shardResultPath(options.stateDir, s), s,
                    canonical, result, error);
            }
            if (!ok) {
                warn("shard ", s,
                     " was journaled done but its result is gone; "
                     "re-running");
                continue;
            }
            results.emplace(s, std::move(result));
            record.source == "cache" ? ++resumed_cache
                                     : ++resumed_run;
            kept.push_back(std::move(record));
        }
        journal.records = std::move(kept);
    }
    outcome.shardsResumed = resumed_run + resumed_cache +
                            resumed_quarantined;
    if (!journal.save(queue_path, error))
        return fail("cannot write queue journal: " + error);

    obs::Heartbeat heartbeat(
        {"run", "cache", "quarantined"}, shards.size(), 1,
        options.heartbeat ? &std::cerr : nullptr);
    heartbeat.prime(
        {resumed_run, resumed_cache, resumed_quarantined});

    std::vector<ShardTrack> track(shards.size());
    std::uint64_t terminal = 0;
    for (const QueueRecord &record : journal.records) {
        track[static_cast<std::size_t>(record.shard)].terminal =
            true;
        ++terminal;
    }

    std::vector<RunningWorker> running;
    const unsigned slots = std::max(1u, options.workers);

    while (terminal < shards.size()) {
        const std::uint64_t now = nowMs();

        // Launch: cache first, then a worker process.
        for (std::uint64_t s = 0;
             s < shards.size() && running.size() < slots; ++s) {
            ShardTrack &t = track[static_cast<std::size_t>(s)];
            if (t.terminal || t.running || t.readyAtMs > now)
                continue;
            const JobConfig &config = spec.jobs[shards[s].job];
            const std::string canonical =
                shards[static_cast<std::size_t>(s)].canonical(
                    config);

            if (t.attempts == 0 && cache.enabled()) {
                std::uint64_t key = 0;
                std::string diagnostic;
                obs::JsonValue result;
                if (ResultCache::shardKey(config, shards[s], key,
                                          error) &&
                    cache.lookup(key, canonical, result,
                                 diagnostic)) {
                    results.emplace(s, std::move(result));
                    QueueRecord record;
                    record.shard = s;
                    record.state = ShardState::Done;
                    record.source = "cache";
                    journal.add(std::move(record));
                    if (!journal.save(queue_path, error))
                        warn("queue journal write failed: ", error);
                    t.terminal = true;
                    ++terminal;
                    ++outcome.cacheHits;
                    heartbeat.record(1);
                    continue;
                }
                if (!diagnostic.empty())
                    warn("cache: ", diagnostic);
            }

            const pid_t pid = spawnWorker(
                options, s, shardResultPath(options.stateDir, s));
            ++t.attempts;
            if (pid < 0) {
                t.lastFailure = "serve.fork";
                t.readyAtMs =
                    now + backoffDelayMs(options.backoffBaseSeconds,
                                         t.attempts, spec_hash, s);
                continue;
            }
            RunningWorker worker;
            worker.shard = s;
            worker.pid = pid;
            worker.deadlineMs = options.shardTimeoutSeconds > 0
                ? now + static_cast<std::uint64_t>(
                            options.shardTimeoutSeconds * 1000.0)
                : 0;
            running.push_back(worker);
            t.running = true;
        }

        // Watchdog: SIGKILL anything past its wall-clock budget.
        for (RunningWorker &worker : running) {
            if (worker.deadlineMs && !worker.watchdogFired &&
                nowMs() > worker.deadlineMs) {
                ::kill(worker.pid, SIGKILL);
                worker.watchdogFired = true;
            }
        }

        // Reap every worker that has exited.
        bool reaped_any = false;
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                break;
            auto it = running.begin();
            while (it != running.end() && it->pid != pid)
                ++it;
            if (it == running.end())
                continue;
            reaped_any = true;
            const RunningWorker worker = *it;
            running.erase(it);
            const std::uint64_t s = worker.shard;
            ShardTrack &t = track[static_cast<std::size_t>(s)];
            t.running = false;

            const JobConfig &config = spec.jobs[shards[s].job];
            const std::string canonical =
                shards[static_cast<std::size_t>(s)].canonical(
                    config);
            obs::JsonValue result;
            bool ok = !worker.watchdogFired && WIFEXITED(status) &&
                      WEXITSTATUS(status) == 0;
            std::string code;
            if (ok &&
                !loadShardResult(
                    shardResultPath(options.stateDir, s), s,
                    canonical, result, error)) {
                ok = false;
                code = "serve.result";
                warn("shard ", s, ": ", error);
            }
            if (ok) {
                std::uint64_t key = 0;
                if (cache.enabled() &&
                    ResultCache::shardKey(config, shards[s], key,
                                          error)) {
                    std::string publish_error;
                    if (!cache.publish(key, canonical, result,
                                       publish_error))
                        warn("cache publish: ", publish_error);
                }
                results.emplace(s, std::move(result));
                QueueRecord record;
                record.shard = s;
                record.state = ShardState::Done;
                record.source = "run";
                journal.add(std::move(record));
                if (!journal.save(queue_path, error))
                    warn("queue journal write failed: ", error);
                t.terminal = true;
                ++terminal;
                ++outcome.shardsRun;
                heartbeat.record(0);
                continue;
            }
            if (code.empty())
                code = failureCode(worker, status);
            t.lastFailure = code;
            if (t.attempts >= options.maxAttempts) {
                QueueRecord record;
                record.shard = s;
                record.state = ShardState::Quarantined;
                record.attempts = t.attempts;
                record.code = code;
                journal.add(std::move(record));
                if (!journal.save(queue_path, error))
                    warn("queue journal write failed: ", error);
                t.terminal = true;
                ++terminal;
                ++outcome.quarantined;
                heartbeat.record(2);
                warn("shard ", s, " quarantined after ",
                     t.attempts, " attempts (", code, ")");
            } else {
                const std::uint64_t delay =
                    backoffDelayMs(options.backoffBaseSeconds,
                                   t.attempts, spec_hash, s);
                t.readyAtMs = nowMs() + delay;
                ++outcome.retries;
                warn("shard ", s, " failed (", code,
                     "); retrying in ", delay, " ms (attempt ",
                     t.attempts + 1, "/", options.maxAttempts, ")");
            }
        }

        if (!reaped_any && terminal < shards.size())
            ::usleep(5000);
    }
    heartbeat.finish();

    // Everything below is derived purely from spec + results +
    // journal, so the manifest is identical for any path (worker
    // count, kill/resume split, cache hits) that reached this state.
    const obs::JsonValue merged = buildMergedManifest(
        spec, spec_hash, shards, results, journal);
    if (!options.manifestPath.empty()) {
        if (!atomicWriteFile(options.manifestPath,
                             merged.dump(1) + "\n", error))
            return fail("cannot write manifest: " + error);
        inform("wrote manifest to ", options.manifestPath);
    }

    if (!options.metricsPath.empty()) {
        obs::JsonValue metrics = obs::JsonValue::object();
        metrics.set("schema", "mbavf-serve-metrics");
        metrics.set("shards", obs::JsonValue(outcome.shardsTotal));
        metrics.set("run", obs::JsonValue(outcome.shardsRun));
        metrics.set("resumed",
                    obs::JsonValue(outcome.shardsResumed));
        metrics.set("cache_hits", obs::JsonValue(outcome.cacheHits));
        metrics.set("cache_published",
                    obs::JsonValue(cache.stats().published));
        metrics.set("retries", obs::JsonValue(outcome.retries));
        metrics.set("quarantined",
                    obs::JsonValue(outcome.quarantined));
        if (!atomicWriteFile(options.metricsPath,
                             metrics.dump(1) + "\n", error))
            warn("cannot write metrics: ", error);
    }

    std::cout << "serve: " << outcome.shardsTotal << " shard"
              << (outcome.shardsTotal == 1 ? "" : "s") << " ("
              << outcome.shardsRun << " run, " << outcome.cacheHits
              << " cache hit"
              << (outcome.cacheHits == 1 ? "" : "s") << ", "
              << outcome.shardsResumed << " resumed), "
              << outcome.retries << " retr"
              << (outcome.retries == 1 ? "y" : "ies") << ", "
              << outcome.quarantined << " quarantined\n";

    outcome.exitCode = outcome.quarantined ? 1 : 0;
    return outcome;
}

int
verifyCache(const ServeOptions &options, double fraction)
{
    JobSpec spec;
    std::string error;
    if (!JobSpec::load(options.specPath, spec, error)) {
        std::cerr << "mbavf_serve: " << error << "\n";
        return 2;
    }
    std::uint64_t spec_hash = 0;
    if (!spec.hash(spec_hash, error)) {
        std::cerr << "mbavf_serve: " << error << "\n";
        return 2;
    }
    if (options.cacheDir.empty()) {
        std::cerr << "mbavf_serve: --cache-verify needs "
                     "--cache=DIR\n";
        return 2;
    }
    const std::vector<ShardSpec> shards = shardJobs(spec);
    ResultCache cache(options.cacheDir);

    CheckReport report;
    std::uint64_t sampled = 0;
    for (std::uint64_t s = 0; s < shards.size(); ++s) {
        const JobConfig &config = spec.jobs[shards[s].job];
        const std::string canonical =
            shards[static_cast<std::size_t>(s)].canonical(config);
        std::uint64_t key = 0;
        if (!ResultCache::shardKey(config, shards[s], key, error)) {
            report.error("cache.verify.input",
                         "shard " + std::to_string(s), error);
            continue;
        }
        const std::string entry = cache.entryPath(key);
        if (!fs::exists(entry))
            continue;
        // Deterministic sampling: the same spec + fraction always
        // verifies the same shards.
        const double draw =
            static_cast<double>(splitMix64(spec_hash, s) >> 11) *
            0x1.0p-53;
        if (draw >= fraction)
            continue;
        ++sampled;

        obs::JsonValue cached;
        std::string diagnostic;
        if (!cache.lookup(key, canonical, cached, diagnostic)) {
            report.error("cache.reject", entry,
                         diagnostic.empty() ? "entry vanished"
                                            : diagnostic);
            continue;
        }

        const std::string fresh_path = entry + ".verify";
        const pid_t pid = spawnWorker(options, s, fresh_path);
        if (pid < 0) {
            report.error("cache.verify.worker",
                         "shard " + std::to_string(s),
                         "cannot fork verification worker");
            continue;
        }
        int status = 0;
        ::waitpid(pid, &status, 0);
        obs::JsonValue fresh;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
            !loadShardResult(fresh_path, s, canonical, fresh,
                             error)) {
            report.error("cache.verify.worker",
                         "shard " + std::to_string(s),
                         "verification re-run failed");
            fs::remove(fresh_path);
            continue;
        }
        fs::remove(fresh_path);

        const obs::DiffResult diff =
            obs::diffManifests(cached, fresh, obs::DiffOptions{});
        if (!diff.clean()) {
            std::string detail = "cached result differs from a "
                                 "fresh re-run";
            if (!diff.notes.empty())
                detail += ": " + diff.notes.front();
            report.error("cache.stale", entry, detail);
        }
    }

    report.print(std::cout);
    std::cout << "cache-verify: " << sampled << " of "
              << shards.size() << " shard"
              << (shards.size() == 1 ? "" : "s") << " sampled, "
              << report.errorCount() << " error"
              << (report.errorCount() == 1 ? "" : "s") << "\n";
    return report.errorCount() ? 2 : 0;
}

} // namespace mbavf::serve
