#include "serve/cache.hh"

#include <filesystem>

#include "common/journal_io.hh"
#include "obs/manifest.hh"

namespace mbavf::serve
{

namespace
{

/** Validate one entry document against its expected key. */
bool
checkEntry(const obs::JsonValue &doc, const std::string &hex_key,
           const obs::JsonValue **result, std::string &diagnostic)
{
    const obs::JsonValue *cache = doc.find("cache");
    if (!cache || !cache->isObject()) {
        diagnostic = "no cache section";
        return false;
    }
    const obs::JsonValue *key = cache->find("key");
    if (!key || !key->isString() || key->asString() != hex_key) {
        diagnostic = "key field does not match entry name";
        return false;
    }
    const obs::JsonValue *stored = doc.find("result");
    if (!stored) {
        diagnostic = "no result section";
        return false;
    }
    *result = stored;
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

bool
ResultCache::shardKey(const JobConfig &config, const ShardSpec &shard,
                      std::uint64_t &key, std::string &error)
{
    std::uint64_t h = fnv1a64(std::string("mbavf-cache"));
    h = fnv1a64(shard.canonical(config), h);
    if (!config.arenaIn.empty()) {
        std::uint64_t content = 0;
        if (!hashFileContents(config.arenaIn, content, error))
            return false;
        h = fnv1a64(&content, sizeof(content), h);
    }
    key = h;
    return true;
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + hex64(key) + ".json";
}

bool
ResultCache::lookup(std::uint64_t key, const std::string &canonical,
                    obs::JsonValue &result, std::string &diagnostic)
{
    diagnostic.clear();
    if (!enabled())
        return false;
    const std::string path = entryPath(key);
    if (!std::filesystem::exists(path)) {
        ++stats_.misses;
        return false;
    }
    obs::JsonValue doc;
    std::string error;
    if (!obs::Manifest::load(path, doc, error)) {
        ++stats_.rejected;
        diagnostic = path + ": " + error;
        return false;
    }
    const obs::JsonValue *stored = nullptr;
    if (!checkEntry(doc, hex64(key), &stored, diagnostic)) {
        ++stats_.rejected;
        diagnostic = path + ": " + diagnostic;
        return false;
    }
    const obs::JsonValue *entry_canonical =
        doc.find("cache")->find("canonical");
    if (!entry_canonical || !entry_canonical->isString() ||
        entry_canonical->asString() != canonical) {
        // A 64-bit key collision between distinct shards: miss, and
        // loudly, because silence here would serve a wrong result.
        ++stats_.rejected;
        diagnostic = path + ": canonical configuration mismatch "
                            "(key collision?)";
        return false;
    }
    result = *stored;
    ++stats_.hits;
    return true;
}

bool
ResultCache::publish(std::uint64_t key, const std::string &canonical,
                     const obs::JsonValue &result, std::string &error)
{
    if (!enabled())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        error = "cannot create cache dir '" + dir_ +
                "': " + ec.message();
        return false;
    }
    obs::Manifest manifest("mbavf_serve cache");
    obs::JsonValue cache = obs::JsonValue::object();
    cache.set("key", hex64(key));
    cache.set("canonical", canonical);
    manifest.set("cache", std::move(cache));
    manifest.set("result", result);
    if (!manifest.write(entryPath(key), error))
        return false;
    ++stats_.published;
    return true;
}

std::size_t
lintResultCache(const std::string &dir, CheckReport &report)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        report.error("cache.io", dir,
                     "cannot read cache directory: " + ec.message());
        return 0;
    }
    std::size_t entries = 0;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json") {
            continue;
        }
        ++entries;
        const std::string path = entry.path().string();
        const std::string stem = entry.path().stem().string();
        obs::JsonValue doc;
        std::string error;
        if (!obs::Manifest::load(path, doc, error)) {
            report.error("cache.entry.envelope", path, error);
            continue;
        }
        const obs::JsonValue *cache = doc.find("cache");
        if (!cache || !cache->isObject()) {
            report.error("cache.entry.section", path,
                         "entry has no cache section");
            continue;
        }
        const obs::JsonValue *key = cache->find("key");
        const obs::JsonValue *canonical = cache->find("canonical");
        if (!key || !key->isString() || !canonical ||
            !canonical->isString() || canonical->asString().empty()) {
            report.error("cache.entry.section", path,
                         "cache section needs string key and "
                         "canonical fields");
            continue;
        }
        if (key->asString() != stem) {
            report.error("cache.entry.name", path,
                         "entry named '" + stem +
                             "' carries key '" + key->asString() +
                             "'");
        }
        if (!doc.find("result")) {
            report.error("cache.entry.result", path,
                         "entry has no result section");
        }
    }
    return entries;
}

} // namespace mbavf::serve
