/**
 * @file
 * Worker-side shard execution: compute one ShardSpec's result as a
 * JSON fragment the supervisor can cache and merge.
 *
 * A sweep shard produces {"type": "sweep", "avf": ..., "ser": ...}
 * (the same sections the mbavf CLI emits); a campaign shard produces
 * {"type": "campaign", "trials", "counts", "codes"} — raw outcome
 * counts only, because counts sum order-independently across shards
 * while Wilson intervals do not. The supervisor folds shard counts
 * into one tally per job and derives the intervals at merge time.
 *
 * Every field is a pure function of the shard's canonical
 * configuration (bit-identical at any thread count), which is what
 * makes the result cacheable and the merged manifest reproducible.
 */

#ifndef MBAVF_SERVE_SHARD_HH
#define MBAVF_SERVE_SHARD_HH

#include <string>

#include "obs/json.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{

/**
 * Execute @p shard of @p config in this process. Returns false +
 * @p error on unusable configuration (unknown workload, unreadable
 * arena); @p out is valid only on true.
 *
 * Honors the config's "fault" test instrumentation: "crash" aborts
 * and "hang" stalls forever once execution reaches the shard body,
 * exactly the failure shapes the supervisor must contain.
 */
bool runShard(const JobConfig &config, const ShardSpec &shard,
              obs::JsonValue &out, std::string &error);

/** Merge campaign shard results (raw counts) into one tally JSON. */
obs::JsonValue mergeCampaignShards(
    const std::vector<obs::JsonValue> &shard_results);

/**
 * Fold the stratified shard results of one campaign job into its
 * "strata" manifest section: validates that every shard computed the
 * same partition (strata_hash), sums the sparse per-stratum counts,
 * and derives the combined estimator from the stratum table carried
 * in the shard metadata — no partition rebuild at merge time. False
 * + @p error when shards disagree or the metadata is malformed.
 */
bool mergeStratifiedStrata(
    const JobConfig &job,
    const std::vector<obs::JsonValue> &shard_results,
    obs::JsonValue &out, std::string &error);

} // namespace mbavf::serve

#endif // MBAVF_SERVE_SHARD_HH
