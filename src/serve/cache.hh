/**
 * @file
 * Content-addressed result cache for analysis shards.
 *
 * An entry lives at <dir>/<hex64(key)>.json where the key is FNV-1a
 * over the shard's canonical configuration plus the content hash of
 * every input file it reads (arenas) — the same bytes-in identity
 * the spec hash uses, so touching an input or editing a job field
 * changes the key and stale results simply stop being addressed.
 *
 * Each entry is a manifest-enveloped document carrying a "cache"
 * section {key, canonical} and the shard's "result". Lookups lint on
 * load: an unparseable entry, a foreign envelope, or a canonical
 * string that does not match the probe (a 64-bit collision or a
 * hand-edited file) is a miss with a diagnostic, never a wrong
 * answer. Publishes go through the usual write-temporary + rename,
 * so concurrent readers and a crash mid-publish leave either the old
 * entry or the new one, and a failed publish costs only a re-run.
 */

#ifndef MBAVF_SERVE_CACHE_HH
#define MBAVF_SERVE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "check/report.hh"
#include "obs/json.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{

/** Hit/miss accounting for one service run. */
struct CacheStatsCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejected = 0; ///< present but failed lint-on-load
    std::uint64_t published = 0;
};

/** One directory of content-addressed shard results. */
class ResultCache
{
  public:
    /** @p dir empty disables the cache (every lookup misses). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Derive @p shard's cache key. False + @p error when an input
     * file the key must cover cannot be read.
     */
    static bool shardKey(const JobConfig &config,
                         const ShardSpec &shard, std::uint64_t &key,
                         std::string &error);

    /** Entry path for @p key (valid even when disabled). */
    std::string entryPath(std::uint64_t key) const;

    /**
     * Fetch the result stored under @p key. False on a miss;
     * @p diagnostic is set when the miss was a rejected entry
     * rather than an absent one. Counts into the stats.
     */
    bool lookup(std::uint64_t key, const std::string &canonical,
                obs::JsonValue &result, std::string &diagnostic);

    /**
     * Publish @p result under @p key (creating the directory on
     * first use). False + @p error on I/O failure — callers treat
     * that as a warning, not a run failure.
     */
    bool publish(std::uint64_t key, const std::string &canonical,
                 const obs::JsonValue &result, std::string &error);

    const CacheStatsCounters &stats() const { return stats_; }

  private:
    std::string dir_;
    CacheStatsCounters stats_;
};

/**
 * Audit every entry in @p dir: envelope, "cache" section, key/
 * filename agreement, and a present result. Codes: cache.io,
 * cache.entry.envelope, cache.entry.section, cache.entry.name,
 * cache.entry.result. Returns the number of entries examined.
 */
std::size_t lintResultCache(const std::string &dir,
                            CheckReport &report);

} // namespace mbavf::serve

#endif // MBAVF_SERVE_CACHE_HH
