/**
 * @file
 * Crash-safe queue journal for the analysis service.
 *
 * The journal records which shards of a job spec have reached a
 * terminal state, in the plain-text format family of
 * inject/journal.hh and via the same crash discipline
 * (common/journal_io.hh):
 *
 *   mbavf-queue v1 spec=<hex64 spec hash> shards=<count>
 *   <shard> done run
 *   <shard> done cache
 *   <shard> quarantined <attempts> <code>
 *
 * The header binds the journal to one spec identity: resuming
 * against an edited spec (or edited input files — the hash covers
 * their contents) is rejected rather than silently merging results
 * from two different experiments. Records stay sorted by shard id
 * and every state change rewrites the whole file atomically, so a
 * kill -9 at any instant leaves either the previous or the new
 * complete snapshot; a truncated final line is dropped on load and
 * that shard simply re-runs — re-running a shard is always safe
 * because shard results are pure functions of the spec.
 */

#ifndef MBAVF_SERVE_QUEUE_HH
#define MBAVF_SERVE_QUEUE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/report.hh"

namespace mbavf::serve
{

/** Terminal state of one shard. */
enum class ShardState : std::uint8_t
{
    Done,        ///< result available (computed or cache hit)
    Quarantined, ///< failed maxAttempts times; excluded from results
};

/** One journal record. */
struct QueueRecord
{
    std::uint64_t shard = 0;
    ShardState state = ShardState::Done;
    /** Done: where the result came from ("run" / "cache"). */
    std::string source;
    /** Quarantined: how many attempts were spent. */
    std::uint64_t attempts = 0;
    /** Quarantined: the last failure code (e.g. "serve.crash"). */
    std::string code;
};

/** The journal: spec binding plus terminal shard records. */
struct QueueJournal
{
    std::uint64_t specHash = 0;
    std::uint64_t numShards = 0;
    std::vector<QueueRecord> records; ///< sorted by shard id

    /** Record a terminal state (keeps records sorted). */
    void add(QueueRecord record);

    /** Lookup; null when @p shard has no terminal record. */
    const QueueRecord *find(std::uint64_t shard) const;

    /**
     * Parse @p path. False + @p error on unreadable file, bad
     * header, malformed record, out-of-range or duplicate shard.
     */
    static bool load(const std::string &path, QueueJournal &out,
                     std::string &error);

    /** Atomically (re)write the whole journal. */
    bool save(const std::string &path, std::string &error) const;
};

/**
 * Audit a queue journal for mbavf_lint: structural validity plus
 * consistency (shard ids in range, no duplicates, quarantine
 * records carry attempts and a code). Codes: serve.queue.io,
 * serve.queue.header, serve.queue.record, serve.queue.range,
 * serve.queue.dup.
 */
void lintQueueJournal(const std::string &path, CheckReport &report);

} // namespace mbavf::serve

#endif // MBAVF_SERVE_QUEUE_HH
