#include "serve/spec.hh"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "common/journal_io.hh"

namespace mbavf::serve
{

namespace
{

/** Render a number through JsonValue for a stable lexical form. */
std::string
canonicalNumber(double value)
{
    return obs::JsonValue(value).dump();
}

/** Fetch an optional member, type-checked. */
bool
getString(const obs::JsonValue &job, const char *key,
          std::string &out, std::string &error)
{
    const obs::JsonValue *v = job.find(key);
    if (!v)
        return true;
    if (!v->isString()) {
        error = std::string("job field '") + key +
                "' must be a string";
        return false;
    }
    out = v->asString();
    return true;
}

bool
getUint(const obs::JsonValue &job, const char *key,
        std::uint64_t &out, std::string &error)
{
    const obs::JsonValue *v = job.find(key);
    if (!v)
        return true;
    if (v->kind() != obs::JsonValue::Kind::Uint) {
        error = std::string("job field '") + key +
                "' must be a nonnegative integer";
        return false;
    }
    out = v->asUint();
    return true;
}

bool
getDouble(const obs::JsonValue &job, const char *key, double &out,
          std::string &error)
{
    const obs::JsonValue *v = job.find(key);
    if (!v)
        return true;
    if (!v->isNumber()) {
        error = std::string("job field '") + key +
                "' must be a number";
        return false;
    }
    out = v->asDouble();
    return true;
}

bool
getBool(const obs::JsonValue &job, const char *key, bool &out,
        std::string &error)
{
    const obs::JsonValue *v = job.find(key);
    if (!v)
        return true;
    if (!v->isBool()) {
        error = std::string("job field '") + key +
                "' must be a bool";
        return false;
    }
    out = v->asBool();
    return true;
}

bool
parseJob(const obs::JsonValue &doc, std::size_t index,
         JobConfig &job, std::string &error)
{
    if (!doc.isObject()) {
        error = "job " + std::to_string(index) +
                " is not an object";
        return false;
    }
    std::string type;
    if (!getString(doc, "type", type, error))
        return false;
    if (type == "sweep") {
        job.type = JobType::Sweep;
    } else if (type == "campaign") {
        job.type = JobType::Campaign;
    } else {
        error = "job " + std::to_string(index) +
                ": type must be \"sweep\" or \"campaign\"";
        return false;
    }

    std::uint64_t scale = job.scale;
    std::uint64_t interleave = job.interleave;
    std::uint64_t modes = job.modes;
    std::uint64_t windows = job.windows;
    std::uint64_t protect_domain = job.protectDomain;
    const bool ok = getString(doc, "workload", job.workload, error) &&
        getUint(doc, "scale", scale, error) &&
        getString(doc, "structure", job.structure, error) &&
        getString(doc, "scheme", job.scheme, error) &&
        getString(doc, "style", job.style, error) &&
        getUint(doc, "interleave", interleave, error) &&
        getUint(doc, "modes", modes, error) &&
        getUint(doc, "windows", windows, error) &&
        getBool(doc, "shield_due", job.shieldDue, error) &&
        getDouble(doc, "total_fit", job.totalFit, error) &&
        getString(doc, "arena", job.arenaIn, error) &&
        getUint(doc, "trials", job.trials, error) &&
        getUint(doc, "seed", job.seed, error) &&
        getString(doc, "kind", job.kind, error) &&
        getDouble(doc, "watchdog", job.watchdog, error) &&
        getString(doc, "protect", job.protect, error) &&
        getUint(doc, "protect_domain", protect_domain, error) &&
        getUint(doc, "shard_trials", job.shardTrials, error) &&
        getString(doc, "fault", job.fault, error);
    std::uint64_t stratify_windows = job.stratifyWindows;
    std::uint64_t stratify_classes = job.stratifyClasses;
    const bool strat_ok = ok &&
        getBool(doc, "stratify", job.stratify, error) &&
        getUint(doc, "stratify_windows", stratify_windows, error) &&
        getUint(doc, "stratify_classes", stratify_classes, error) &&
        getUint(doc, "budget", job.budget, error);
    if (!ok || !strat_ok) {
        error = "job " + std::to_string(index) + ": " + error;
        return false;
    }
    job.scale = static_cast<unsigned>(scale);
    job.interleave = static_cast<unsigned>(interleave);
    job.modes = static_cast<unsigned>(modes);
    job.windows = static_cast<unsigned>(windows);
    job.protectDomain = static_cast<unsigned>(protect_domain);
    job.stratifyWindows = static_cast<unsigned>(stratify_windows);
    job.stratifyClasses = static_cast<unsigned>(stratify_classes);

    if (job.type == JobType::Sweep) {
        if (job.workload.empty() == job.arenaIn.empty()) {
            error = "job " + std::to_string(index) +
                    ": a sweep needs exactly one of workload/arena";
            return false;
        }
        if (job.modes == 0) {
            error = "job " + std::to_string(index) +
                    ": modes must be at least 1";
            return false;
        }
    } else {
        if (job.workload.empty()) {
            error = "job " + std::to_string(index) +
                    ": a campaign needs a workload";
            return false;
        }
        if (job.trials == 0) {
            error = "job " + std::to_string(index) +
                    ": trials must be at least 1";
            return false;
        }
        if (job.stratify && job.kind != "register") {
            error = "job " + std::to_string(index) +
                    ": stratify supports kind \"register\" only";
            return false;
        }
    }
    if (job.stratify && job.type != JobType::Campaign) {
        error = "job " + std::to_string(index) +
                ": stratify applies to campaign jobs only";
        return false;
    }
    if (!job.fault.empty() && job.fault != "crash" &&
        job.fault != "hang") {
        error = "job " + std::to_string(index) +
                ": fault must be \"crash\" or \"hang\"";
        return false;
    }
    return true;
}

} // namespace

const char *
jobTypeName(JobType type)
{
    return type == JobType::Sweep ? "sweep" : "campaign";
}

std::string
JobConfig::effectiveStyle() const
{
    if (!style.empty())
        return style;
    return structure == "vgpr" ? "inter" : "way";
}

std::string
JobConfig::canonical() const
{
    std::string out;
    out += "type=";
    out += jobTypeName(type);
    out += " workload=" + (workload.empty() ? "-" : workload);
    out += " scale=" + std::to_string(scale);
    if (type == JobType::Sweep) {
        out += " structure=" + structure;
        out += " scheme=" + scheme;
        out += " style=" + effectiveStyle();
        out += " interleave=" + std::to_string(interleave);
        out += " modes=" + std::to_string(modes);
        out += " windows=" + std::to_string(windows);
        out += std::string(" shield_due=") +
               (shieldDue ? "1" : "0");
        out += " total_fit=" + canonicalNumber(totalFit);
        out += " arena=" + (arenaIn.empty() ? "-" : arenaIn);
    } else {
        out += " trials=" + std::to_string(trials);
        out += " seed=" + std::to_string(seed);
        out += " kind=" + kind;
        out += " watchdog=" + canonicalNumber(watchdog);
        out += " protect=" + protect;
        out += " protect_domain=" + std::to_string(protectDomain);
        if (stratify) {
            out += " stratify=1";
            out += " stratify_windows=" +
                   std::to_string(stratifyWindows);
            out += " stratify_classes=" +
                   std::to_string(stratifyClasses);
            out += " budget=" + std::to_string(effectiveTrials());
        }
    }
    if (!fault.empty())
        out += " fault=" + fault;
    return out;
}

bool
JobSpec::parse(const obs::JsonValue &doc, JobSpec &out,
               std::string &error)
{
    out.jobs.clear();
    if (!doc.isObject()) {
        error = "spec is not a JSON object";
        return false;
    }
    const obs::JsonValue *jobs = doc.find("jobs");
    if (!jobs || !jobs->isArray()) {
        error = "spec has no jobs array";
        return false;
    }
    if (jobs->items().empty()) {
        error = "spec lists no jobs";
        return false;
    }
    for (std::size_t i = 0; i < jobs->items().size(); ++i) {
        JobConfig job;
        if (!parseJob(jobs->items()[i], i, job, error))
            return false;
        out.jobs.push_back(std::move(job));
    }
    return true;
}

bool
JobSpec::load(const std::string &path, JobSpec &out,
              std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open spec '" + path + "'";
        return false;
    }
    const std::string text((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    obs::JsonValue doc;
    if (!obs::JsonValue::parse(text, doc, error)) {
        error = "spec '" + path + "': " + error;
        return false;
    }
    if (!parse(doc, out, error)) {
        error = "spec '" + path + "': " + error;
        return false;
    }
    return true;
}

bool
JobSpec::hash(std::uint64_t &out, std::string &error) const
{
    std::uint64_t h = fnv1a64(std::string("mbavf-spec"));
    for (const JobConfig &job : jobs) {
        h = fnv1a64(job.canonical() + "\n", h);
        if (!job.arenaIn.empty()) {
            std::uint64_t content = 0;
            if (!hashFileContents(job.arenaIn, content, error))
                return false;
            h = fnv1a64(&content, sizeof(content), h);
        }
    }
    out = h;
    return true;
}

std::string
ShardSpec::canonical(const JobConfig &config) const
{
    std::string out = config.canonical();
    if (numTrials) {
        out += " first=" + std::to_string(firstTrial);
        out += " n=" + std::to_string(numTrials);
    }
    return out;
}

std::vector<ShardSpec>
shardJobs(const JobSpec &spec)
{
    std::vector<ShardSpec> shards;
    for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
        const JobConfig &job = spec.jobs[j];
        // Stratified campaigns shard over the pick sequence instead
        // of the uniform trial indices; both are contiguous ranges
        // that merge identically at any split.
        const std::uint64_t total = job.effectiveTrials();
        if (job.type == JobType::Sweep || job.shardTrials == 0 ||
            job.shardTrials >= total) {
            ShardSpec shard;
            shard.job = j;
            if (job.type == JobType::Campaign) {
                shard.firstTrial = 0;
                shard.numTrials = total;
            }
            shards.push_back(shard);
            continue;
        }
        for (std::uint64_t first = 0; first < total;
             first += job.shardTrials) {
            ShardSpec shard;
            shard.job = j;
            shard.firstTrial = first;
            shard.numTrials =
                std::min(job.shardTrials, total - first);
            shards.push_back(shard);
        }
    }
    return shards;
}

} // namespace mbavf::serve
