#include "serve/shard.hh"

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <optional>

#include "core/arena_io.hh"
#include "core/layout.hh"
#include "core/lifetime_arena.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "obs/adapters.hh"
#include "workloads/ace_runner.hh"

namespace mbavf::serve
{

namespace
{

/** The deliberate failures supervisor tests provoke. */
void
applyFaultInstrumentation(const JobConfig &config)
{
    if (config.fault == "crash")
        std::abort();
    if (config.fault == "hang") {
        for (;;)
            ::pause();
    }
}

bool
runSweepShard(const JobConfig &config, obs::JsonValue &out,
              std::string &error)
{
    GpuConfig gpu;
    LifetimeStore life(8, 64);
    Cycle horizon = 0;
    std::optional<LifetimeArena> arena;
    if (!config.arenaIn.empty()) {
        arena = tryLoadArena(config.arenaIn, error, &horizon);
        if (!arena) {
            error = "cannot load arena '" + config.arenaIn +
                    "': " + error;
            return false;
        }
        if (horizon == 0) {
            error = "arena '" + config.arenaIn +
                    "' records no producer horizon";
            return false;
        }
    } else {
        AceRun run = runAceAnalysis(config.workload, config.scale,
                                    gpu, config.structure == "l2");
        horizon = run.horizon;
        if (config.structure == "l1")
            life = std::move(run.l1);
        else if (config.structure == "l2")
            life = std::move(run.l2);
        else if (config.structure == "vgpr")
            life = std::move(run.vgpr);
        else {
            error = "unknown structure '" + config.structure + "'";
            return false;
        }
    }

    const unsigned word_width =
        arena ? arena->wordWidth() : life.wordWidth();
    const unsigned expected_width =
        config.structure == "vgpr" ? 32 : 8;
    if (word_width != expected_width) {
        error = "lifetime word width " +
                std::to_string(word_width) +
                " does not match structure '" + config.structure +
                "'";
        return false;
    }

    const std::string style = config.effectiveStyle();
    std::unique_ptr<PhysicalArray> array;
    if (config.structure == "vgpr") {
        if (style != "intra" && style != "inter") {
            error = "vgpr style must be intra|inter";
            return false;
        }
        array = makeRegFileArray(gpu.regs,
                                 style == "intra"
                                     ? RegInterleave::IntraThread
                                     : RegInterleave::InterThread,
                                 config.interleave);
    } else {
        const CacheParams &cp =
            config.structure == "l2" ? gpu.l2 : gpu.l1;
        CacheGeometry geom{cp.sets, cp.ways, cp.lineBytes};
        array = makeCacheArray(geom, parseCacheInterleave(style),
                               config.interleave);
    }

    auto scheme = makeScheme(config.scheme);
    MbAvfOptions opt;
    opt.horizon = horizon;
    opt.numWindows = config.windows;
    opt.dueShieldsSdc = config.shieldDue ||
        (config.structure == "vgpr" && style == "inter");

    applyFaultInstrumentation(config);

    ModeSweep sweep = arena
        ? sweepModesArena(*array, *arena, *scheme, opt, config.modes)
        : sweepModes(*array, life, *scheme, opt, config.modes);
    StructureSer ser =
        sweepSer(sweep, caseStudyFaultRates(config.totalFit));

    out = obs::JsonValue::object();
    out.set("type", "sweep");
    out.set("avf", obs::modeSweepJson(sweep));
    out.set("ser", obs::serJson(ser));
    return true;
}

bool
runCampaignShard(const JobConfig &config, const ShardSpec &shard,
                 obs::JsonValue &out, std::string &error)
{
    TrialKind kind = TrialKind::Register;
    if (!parseTrialKind(config.kind, kind)) {
        error = "unknown kind '" + config.kind + "'";
        return false;
    }

    Campaign campaign(config.workload, config.scale, GpuConfig{});
    campaign.setWatchdogMultiplier(config.watchdog);
    if (config.protect != "none")
        campaign.setProtection(config.protect, config.protectDomain);

    applyFaultInstrumentation(config);

    CampaignTally tally;
    for (const TrialResult &result : campaign.runTrialsDetailed(
             static_cast<std::size_t>(shard.firstTrial),
             static_cast<std::size_t>(shard.numTrials), config.seed,
             kind))
        tally.add(result);

    obs::JsonValue counts = obs::JsonValue::object();
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        counts.set(injectOutcomeName(outcome),
                   obs::JsonValue(tally.count(outcome)));
    }
    obs::JsonValue codes = obs::JsonValue::object();
    for (const auto &[code, count] : tally.codeCounts)
        codes.set(code, obs::JsonValue(count));

    out = obs::JsonValue::object();
    out.set("type", "campaign");
    out.set("trials", obs::JsonValue(tally.total()));
    out.set("counts", std::move(counts));
    out.set("codes", std::move(codes));
    return true;
}

} // namespace

bool
runShard(const JobConfig &config, const ShardSpec &shard,
         obs::JsonValue &out, std::string &error)
{
    if (config.type == JobType::Sweep)
        return runSweepShard(config, out, error);
    return runCampaignShard(config, shard, out, error);
}

obs::JsonValue
mergeCampaignShards(const std::vector<obs::JsonValue> &shard_results)
{
    CampaignTally tally;
    for (const obs::JsonValue &result : shard_results) {
        const obs::JsonValue *counts = result.find("counts");
        for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
            const InjectOutcome outcome =
                static_cast<InjectOutcome>(i);
            const obs::JsonValue *count =
                counts ? counts->find(injectOutcomeName(outcome))
                       : nullptr;
            tally.counts[i] += count ? count->asUint() : 0;
        }
        const obs::JsonValue *codes = result.find("codes");
        if (codes && codes->isObject()) {
            for (const auto &[code, count] : codes->members())
                tally.codeCounts[code] += count.asUint();
        }
    }
    return obs::tallyJson(tally);
}

} // namespace mbavf::serve
