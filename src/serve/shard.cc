#include "serve/shard.hh"

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <optional>

#include "core/arena_io.hh"
#include "core/layout.hh"
#include "core/lifetime_arena.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "inject/stratified.hh"
#include "obs/adapters.hh"
#include "workloads/ace_runner.hh"

namespace mbavf::serve
{

namespace
{

/** The deliberate failures supervisor tests provoke. */
void
applyFaultInstrumentation(const JobConfig &config)
{
    if (config.fault == "crash")
        std::abort();
    if (config.fault == "hang") {
        for (;;)
            ::pause();
    }
}

bool
runSweepShard(const JobConfig &config, obs::JsonValue &out,
              std::string &error)
{
    GpuConfig gpu;
    LifetimeStore life(8, 64);
    Cycle horizon = 0;
    std::optional<LifetimeArena> arena;
    if (!config.arenaIn.empty()) {
        arena = tryLoadArena(config.arenaIn, error, &horizon);
        if (!arena) {
            error = "cannot load arena '" + config.arenaIn +
                    "': " + error;
            return false;
        }
        if (horizon == 0) {
            error = "arena '" + config.arenaIn +
                    "' records no producer horizon";
            return false;
        }
    } else {
        AceRun run = runAceAnalysis(config.workload, config.scale,
                                    gpu, config.structure == "l2");
        horizon = run.horizon;
        if (config.structure == "l1")
            life = std::move(run.l1);
        else if (config.structure == "l2")
            life = std::move(run.l2);
        else if (config.structure == "vgpr")
            life = std::move(run.vgpr);
        else {
            error = "unknown structure '" + config.structure + "'";
            return false;
        }
    }

    const unsigned word_width =
        arena ? arena->wordWidth() : life.wordWidth();
    const unsigned expected_width =
        config.structure == "vgpr" ? 32 : 8;
    if (word_width != expected_width) {
        error = "lifetime word width " +
                std::to_string(word_width) +
                " does not match structure '" + config.structure +
                "'";
        return false;
    }

    const std::string style = config.effectiveStyle();
    std::unique_ptr<PhysicalArray> array;
    if (config.structure == "vgpr") {
        if (style != "intra" && style != "inter") {
            error = "vgpr style must be intra|inter";
            return false;
        }
        array = makeRegFileArray(gpu.regs,
                                 style == "intra"
                                     ? RegInterleave::IntraThread
                                     : RegInterleave::InterThread,
                                 config.interleave);
    } else {
        const CacheParams &cp =
            config.structure == "l2" ? gpu.l2 : gpu.l1;
        CacheGeometry geom{cp.sets, cp.ways, cp.lineBytes};
        array = makeCacheArray(geom, parseCacheInterleave(style),
                               config.interleave);
    }

    auto scheme = makeScheme(config.scheme);
    MbAvfOptions opt;
    opt.horizon = horizon;
    opt.numWindows = config.windows;
    opt.dueShieldsSdc = config.shieldDue ||
        (config.structure == "vgpr" && style == "inter");

    applyFaultInstrumentation(config);

    ModeSweep sweep = arena
        ? sweepModesArena(*array, *arena, *scheme, opt, config.modes)
        : sweepModes(*array, life, *scheme, opt, config.modes);
    StructureSer ser =
        sweepSer(sweep, caseStudyFaultRates(config.totalFit));

    out = obs::JsonValue::object();
    out.set("type", "sweep");
    out.set("avf", obs::modeSweepJson(sweep));
    out.set("ser", obs::serJson(ser));
    return true;
}

/** "counts" object from a tally's outcome counters. */
obs::JsonValue
countsJson(const CampaignTally &tally)
{
    obs::JsonValue counts = obs::JsonValue::object();
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        counts.set(injectOutcomeName(outcome),
                   obs::JsonValue(tally.count(outcome)));
    }
    return counts;
}

obs::JsonValue
codesJson(const CampaignTally &tally)
{
    obs::JsonValue codes = obs::JsonValue::object();
    for (const auto &[code, count] : tally.codeCounts)
        codes.set(code, obs::JsonValue(count));
    return codes;
}

/**
 * A stratified shard runs picks [firstTrial, firstTrial + numTrials)
 * of the deterministic allocation sequence. Besides the flat counts
 * every campaign shard emits (so mergeCampaignShards works
 * unchanged), it carries sparse per-stratum counts and — identically
 * from every shard — the stratum table itself, so the supervisor can
 * fold the combined estimator without rebuilding the partition.
 */
bool
runStratifiedShard(const JobConfig &config, const ShardSpec &shard,
                   Campaign &campaign, obs::JsonValue &out,
                   std::string &error)
{
    StratifyOptions options;
    options.windows = config.stratifyWindows;
    options.maxClasses = config.stratifyClasses;
    if (options.windows == 0 || options.windows > 16 ||
        options.maxClasses < 2) {
        error = "stratify_windows must be 1..16 and "
                "stratify_classes at least 2";
        return false;
    }
    const Stratification strat =
        Stratification::build(campaign, options);

    applyFaultInstrumentation(config);

    const std::vector<Stratification::Pick> picks =
        strat.picks(shard.firstTrial, shard.numTrials);
    CampaignTally tally;
    std::vector<StratumTally> tallies(strat.strata().size());
    for (const Stratification::Pick &pick : picks) {
        const TrialResult result =
            campaign.runOne(strat.trialSpec(pick, config.seed));
        tally.add(result);
        StratumTally &st = tallies[pick.stratum];
        ++st.trials;
        ++st.counts[static_cast<std::size_t>(result.outcome)];
    }

    obs::JsonValue stratum_counts = obs::JsonValue::array();
    for (std::size_t h = 0; h < tallies.size(); ++h) {
        if (tallies[h].trials == 0)
            continue;
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("stratum", obs::JsonValue(std::uint64_t(h)));
        entry.set("trials", obs::JsonValue(tallies[h].trials));
        obs::JsonValue counts = obs::JsonValue::object();
        for (std::size_t o = 0; o < numInjectOutcomes; ++o) {
            counts.set(
                injectOutcomeName(static_cast<InjectOutcome>(o)),
                obs::JsonValue(tallies[h].counts[o]));
        }
        entry.set("counts", std::move(counts));
        stratum_counts.push(std::move(entry));
    }

    obs::JsonValue meta = obs::JsonValue::object();
    meta.set("hash", obs::JsonValue(strat.hash()));
    meta.set("windows",
             obs::JsonValue(std::uint64_t(strat.numWindows())));
    meta.set("classes",
             obs::JsonValue(std::uint64_t(strat.numClasses())));
    meta.set("skipped_weight", obs::JsonValue(strat.skippedWeight()));
    obs::JsonValue table = obs::JsonValue::array();
    for (const Stratum &st : strat.strata()) {
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("class",
                  obs::JsonValue(std::uint64_t(st.siteClass)));
        entry.set("window", obs::JsonValue(std::uint64_t(st.window)));
        entry.set("weight", obs::JsonValue(st.weight));
        entry.set("predicted", obs::JsonValue(st.predicted));
        entry.set("skipped", obs::JsonValue(st.skipped));
        table.push(std::move(entry));
    }
    meta.set("table", std::move(table));

    out = obs::JsonValue::object();
    out.set("type", "campaign");
    out.set("stratified", obs::JsonValue(true));
    out.set("strata_hash", obs::JsonValue(strat.hash()));
    out.set("trials", obs::JsonValue(tally.total()));
    out.set("counts", countsJson(tally));
    out.set("codes", codesJson(tally));
    out.set("stratum_counts", std::move(stratum_counts));
    out.set("strata_meta", std::move(meta));
    return true;
}

bool
runCampaignShard(const JobConfig &config, const ShardSpec &shard,
                 obs::JsonValue &out, std::string &error)
{
    TrialKind kind = TrialKind::Register;
    if (!parseTrialKind(config.kind, kind)) {
        error = "unknown kind '" + config.kind + "'";
        return false;
    }

    Campaign campaign(config.workload, config.scale, GpuConfig{});
    campaign.setWatchdogMultiplier(config.watchdog);
    if (config.protect != "none")
        campaign.setProtection(config.protect, config.protectDomain);

    if (config.stratify)
        return runStratifiedShard(config, shard, campaign, out,
                                  error);

    applyFaultInstrumentation(config);

    CampaignTally tally;
    for (const TrialResult &result : campaign.runTrialsDetailed(
             static_cast<std::size_t>(shard.firstTrial),
             static_cast<std::size_t>(shard.numTrials), config.seed,
             kind))
        tally.add(result);

    out = obs::JsonValue::object();
    out.set("type", "campaign");
    out.set("trials", obs::JsonValue(tally.total()));
    out.set("counts", countsJson(tally));
    out.set("codes", codesJson(tally));
    return true;
}

} // namespace

bool
runShard(const JobConfig &config, const ShardSpec &shard,
         obs::JsonValue &out, std::string &error)
{
    if (config.type == JobType::Sweep)
        return runSweepShard(config, out, error);
    return runCampaignShard(config, shard, out, error);
}

obs::JsonValue
mergeCampaignShards(const std::vector<obs::JsonValue> &shard_results)
{
    CampaignTally tally;
    for (const obs::JsonValue &result : shard_results) {
        const obs::JsonValue *counts = result.find("counts");
        for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
            const InjectOutcome outcome =
                static_cast<InjectOutcome>(i);
            const obs::JsonValue *count =
                counts ? counts->find(injectOutcomeName(outcome))
                       : nullptr;
            tally.counts[i] += count ? count->asUint() : 0;
        }
        const obs::JsonValue *codes = result.find("codes");
        if (codes && codes->isObject()) {
            for (const auto &[code, count] : codes->members())
                tally.codeCounts[code] += count.asUint();
        }
    }
    return obs::tallyJson(tally);
}

bool
mergeStratifiedStrata(const JobConfig &job,
                      const std::vector<obs::JsonValue> &shard_results,
                      obs::JsonValue &out, std::string &error)
{
    if (shard_results.empty()) {
        error = "stratified merge has no shard results";
        return false;
    }

    // Every shard computes the same partition; the hash check is the
    // guard that a stale cache entry (or a worker running different
    // code) cannot silently fold counts into the wrong strata.
    const obs::JsonValue *meta = shard_results[0].find("strata_meta");
    if (!meta || !meta->isObject()) {
        error = "stratified shard result lacks strata_meta";
        return false;
    }
    const obs::JsonValue *hash = meta->find("hash");
    const obs::JsonValue *windows = meta->find("windows");
    const obs::JsonValue *classes = meta->find("classes");
    const obs::JsonValue *skipped = meta->find("skipped_weight");
    const obs::JsonValue *table = meta->find("table");
    if (!hash || !windows || !classes || !skipped || !table ||
        !table->isArray()) {
        error = "stratified strata_meta is malformed";
        return false;
    }
    for (const obs::JsonValue &result : shard_results) {
        const obs::JsonValue *shard_hash = result.find("strata_hash");
        if (!shard_hash || shard_hash->asUint() != hash->asUint()) {
            error = "stratified shards disagree on the partition "
                    "hash; refusing to merge";
            return false;
        }
    }

    std::vector<Stratum> strata;
    strata.reserve(table->items().size());
    for (const obs::JsonValue &entry : table->items()) {
        const obs::JsonValue *cls = entry.find("class");
        const obs::JsonValue *window = entry.find("window");
        const obs::JsonValue *weight = entry.find("weight");
        const obs::JsonValue *predicted = entry.find("predicted");
        const obs::JsonValue *is_skipped = entry.find("skipped");
        if (!cls || !window || !weight || !predicted || !is_skipped) {
            error = "stratified strata_meta table is malformed";
            return false;
        }
        Stratum st;
        st.siteClass = static_cast<std::uint32_t>(cls->asUint());
        st.window = static_cast<std::uint32_t>(window->asUint());
        st.weight = weight->asDouble();
        st.predicted = predicted->asDouble();
        st.skipped = is_skipped->asBool();
        strata.push_back(st);
    }

    std::vector<StratumTally> tallies(strata.size());
    for (const obs::JsonValue &result : shard_results) {
        const obs::JsonValue *counts = result.find("stratum_counts");
        if (!counts || !counts->isArray()) {
            error = "stratified shard result lacks stratum_counts";
            return false;
        }
        for (const obs::JsonValue &entry : counts->items()) {
            const obs::JsonValue *index = entry.find("stratum");
            const obs::JsonValue *trials = entry.find("trials");
            const obs::JsonValue *outcome_counts =
                entry.find("counts");
            if (!index || !trials || !outcome_counts ||
                index->asUint() >= tallies.size()) {
                error = "stratified stratum_counts entry is "
                        "malformed";
                return false;
            }
            StratumTally &tally = tallies[index->asUint()];
            tally.trials += trials->asUint();
            for (std::size_t o = 0; o < numInjectOutcomes; ++o) {
                const obs::JsonValue *count = outcome_counts->find(
                    injectOutcomeName(static_cast<InjectOutcome>(o)));
                tally.counts[o] += count ? count->asUint() : 0;
            }
        }
    }

    out = obs::strataJson(
        strata, hash->asUint(),
        static_cast<unsigned>(windows->asUint()),
        static_cast<std::uint32_t>(classes->asUint()),
        skipped->asDouble(), tallies, job.effectiveTrials());
    return true;
}

} // namespace mbavf::serve
