/**
 * @file
 * Fault-isolated analysis service: a single-threaded supervisor that
 * schedules shards into forked worker processes.
 *
 * Isolation model: every shard executes in its own worker process
 * (fork + exec of this binary's --worker mode), so a shard that
 * crashes, hangs, or corrupts its address space cannot take the
 * service down. The supervisor only forks, reaps, and reads result
 * files; a per-shard wall-clock watchdog SIGKILLs workers that
 * exceed their budget.
 *
 * Failure policy: a failed shard is requeued with exponential
 * backoff (base * 2^(attempt-1)) plus deterministic jitter derived
 * from splitMix64(spec hash, shard), and quarantined after
 * maxAttempts failures. Quarantine is graceful degradation: the run
 * completes, the merged manifest lists the quarantined shards in an
 * explicit "degraded" section, and the service exits 1 instead
 * of 0. Exit 2 is reserved for the service itself being unusable
 * (unreadable spec, journal bound to a different spec, ...).
 *
 * Durability: terminal shard states go to the queue journal
 * (serve/queue.hh) and shard results to <state>/shard_<N>.json, both
 * atomically. After kill -9 at any instant, --resume recomputes only
 * the shards without a durable result, and because every shard is a
 * pure function of the spec the final merged manifest is
 * bit-identical to an uninterrupted run's at any --workers setting.
 *
 * The merged manifest deliberately carries no "phases", "metrics",
 * or "env" section — everything in it is deterministic, so CI can
 * `cmp` two runs byte-for-byte. Wall-clock accounting goes to
 * stdout and the optional --metrics-out file instead.
 */

#ifndef MBAVF_SERVE_SUPERVISOR_HH
#define MBAVF_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <string>

namespace mbavf::serve
{

/** Configuration of one service run. */
struct ServeOptions
{
    std::string specPath;
    /** Directory for the queue journal and shard results. */
    std::string stateDir;
    /** Content-addressed result cache; empty disables. */
    std::string cacheDir;
    /** Merged manifest output; empty skips writing it. */
    std::string manifestPath;
    /** Non-deterministic run accounting (JSON); empty skips. */
    std::string metricsPath;
    /** Concurrent worker processes. */
    unsigned workers = 1;
    /** --threads forwarded to each worker (0 = all hardware). */
    unsigned threadsPerWorker = 0;
    /** Per-shard wall-clock budget in seconds; 0 disables. */
    double shardTimeoutSeconds = 0.0;
    /** Failures before a shard is quarantined. */
    unsigned maxAttempts = 3;
    /** Backoff base delay in seconds. */
    double backoffBaseSeconds = 0.05;
    /** Continue a previous run's queue journal. */
    bool resume = false;
    /** Progress lines on stderr as shards reach terminal states. */
    bool heartbeat = false;
    /** Path to this binary, for worker re-exec. */
    std::string workerExe;
};

/** What one service run did (for logging and tests). */
struct ServeOutcome
{
    /** 0 clean, 1 degraded (quarantined shards), 2 failed. */
    int exitCode = 2;
    std::uint64_t shardsTotal = 0;
    std::uint64_t shardsRun = 0;     ///< computed by workers now
    std::uint64_t shardsResumed = 0; ///< already terminal on entry
    std::uint64_t cacheHits = 0;
    std::uint64_t retries = 0;
    std::uint64_t quarantined = 0;
};

/** Run the service to completion. */
ServeOutcome runService(const ServeOptions &options);

/**
 * The --worker mode: execute one shard and write its result file
 * atomically. Exit codes: 0 success, 3 unusable configuration.
 */
int runWorker(const std::string &spec_path, std::uint64_t shard,
              const std::string &out_path);

/**
 * The --cache-verify mode: deterministically sample @p fraction of
 * the spec's cached shards, recompute each in a fresh worker, and
 * compare against the cached result. Exits 0 when every sampled
 * entry matches, 2 when any is stale or the spec/cache is unusable.
 */
int verifyCache(const ServeOptions &options, double fraction);

/**
 * Requeue delay before attempt @p attempt (1-based) of @p shard:
 * base * 2^(attempt-1) plus up to 25% deterministic jitter from
 * splitMix64(@p spec_hash, @p shard * 97 + attempt).
 */
std::uint64_t backoffDelayMs(double base_seconds, unsigned attempt,
                             std::uint64_t spec_hash,
                             std::uint64_t shard);

} // namespace mbavf::serve

#endif // MBAVF_SERVE_SUPERVISOR_HH
