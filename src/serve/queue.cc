#include "serve/queue.hh"

#include <algorithm>

#include "common/journal_io.hh"

namespace mbavf::serve
{

namespace
{

constexpr const char *queueMagic = "mbavf-queue";
constexpr const char *queueVersion = "v1";

/** Strict 16-digit lowercase hex parse (the hex64() rendering). */
bool
parseHex64(const std::string &token, std::uint64_t &value)
{
    if (token.size() != 16)
        return false;
    value = 0;
    for (char c : token) {
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    return true;
}

bool
parseHeader(const std::string &line, QueueJournal &out,
            std::string &error)
{
    const std::vector<std::string> tokens = splitJournalTokens(line);
    std::string value;
    if (tokens.size() != 4 || tokens[0] != queueMagic ||
        tokens[1] != queueVersion ||
        !journalKeyValue(tokens[2], "spec", value) ||
        !parseHex64(value, out.specHash) ||
        !journalKeyValue(tokens[3], "shards", value) ||
        !parseJournalU64(value, out.numShards)) {
        error = "bad queue journal header: " + line;
        return false;
    }
    return true;
}

bool
parseRecord(const std::string &line, QueueRecord &record,
            std::string &error)
{
    const std::vector<std::string> tokens = splitJournalTokens(line);
    if (tokens.size() < 3 ||
        !parseJournalU64(tokens[0], record.shard)) {
        error = "bad queue record: " + line;
        return false;
    }
    if (tokens[1] == "done") {
        if (tokens.size() != 3 ||
            (tokens[2] != "run" && tokens[2] != "cache")) {
            error = "bad done record: " + line;
            return false;
        }
        record.state = ShardState::Done;
        record.source = tokens[2];
        return true;
    }
    if (tokens[1] == "quarantined") {
        if (tokens.size() != 4 ||
            !parseJournalU64(tokens[2], record.attempts) ||
            record.attempts == 0) {
            error = "bad quarantine record: " + line;
            return false;
        }
        record.state = ShardState::Quarantined;
        record.code = tokens[3];
        return true;
    }
    error = "unknown record state: " + line;
    return false;
}

} // namespace

void
QueueJournal::add(QueueRecord record)
{
    const auto at = std::lower_bound(
        records.begin(), records.end(), record.shard,
        [](const QueueRecord &r, std::uint64_t shard) {
            return r.shard < shard;
        });
    records.insert(at, std::move(record));
}

const QueueRecord *
QueueJournal::find(std::uint64_t shard) const
{
    const auto at = std::lower_bound(
        records.begin(), records.end(), shard,
        [](const QueueRecord &r, std::uint64_t s) {
            return r.shard < s;
        });
    if (at == records.end() || at->shard != shard)
        return nullptr;
    return &*at;
}

bool
QueueJournal::load(const std::string &path, QueueJournal &out,
                   std::string &error)
{
    out = QueueJournal{};
    std::vector<std::string> lines;
    if (!readCompleteLines(path, lines, error))
        return false;
    if (lines.empty()) {
        error = "queue journal '" + path + "' has no header";
        return false;
    }
    if (!parseHeader(lines[0], out, error))
        return false;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        QueueRecord record;
        if (!parseRecord(lines[i], record, error))
            return false;
        if (record.shard >= out.numShards) {
            error = "queue record shard " +
                    std::to_string(record.shard) +
                    " out of range (shards=" +
                    std::to_string(out.numShards) + ")";
            return false;
        }
        if (out.find(record.shard)) {
            error = "duplicate queue record for shard " +
                    std::to_string(record.shard);
            return false;
        }
        out.add(std::move(record));
    }
    return true;
}

bool
QueueJournal::save(const std::string &path, std::string &error) const
{
    std::string text;
    text += queueMagic;
    text += ' ';
    text += queueVersion;
    text += " spec=" + hex64(specHash);
    text += " shards=" + std::to_string(numShards) + "\n";
    for (const QueueRecord &record : records) {
        text += std::to_string(record.shard);
        if (record.state == ShardState::Done) {
            text += " done " + record.source;
        } else {
            text += " quarantined " +
                    std::to_string(record.attempts) + " " +
                    record.code;
        }
        text += "\n";
    }
    return atomicWriteFile(path, text, error);
}

void
lintQueueJournal(const std::string &path, CheckReport &report)
{
    std::vector<std::string> lines;
    std::string error;
    if (!readCompleteLines(path, lines, error)) {
        report.error("serve.queue.io", path, error);
        return;
    }
    QueueJournal journal;
    if (lines.empty() || !parseHeader(lines[0], journal, error)) {
        report.error("serve.queue.header", path,
                     lines.empty() ? "journal has no header"
                                   : error);
        return;
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::string where =
            path + " line " + std::to_string(i + 1);
        QueueRecord record;
        if (!parseRecord(lines[i], record, error)) {
            report.error("serve.queue.record", where, error);
            continue;
        }
        if (record.shard >= journal.numShards) {
            report.error("serve.queue.range", where,
                         "shard " + std::to_string(record.shard) +
                             " out of range (shards=" +
                             std::to_string(journal.numShards) +
                             ")");
            continue;
        }
        if (journal.find(record.shard)) {
            report.error("serve.queue.dup", where,
                         "shard " + std::to_string(record.shard) +
                             " recorded more than once");
            continue;
        }
        journal.add(std::move(record));
    }
}

} // namespace mbavf::serve
