/**
 * @file
 * Job specifications for the analysis service (tools/mbavf_serve).
 *
 * A job-spec file is a JSON document listing analysis jobs — mode
 * sweeps and injection campaigns over workload x layout x scheme
 * configurations:
 *
 *   {
 *     "jobs": [
 *       {"type": "sweep", "workload": "histogram",
 *        "structure": "l1", "scheme": "secded", "style": "way",
 *        "interleave": 2, "modes": 4},
 *       {"type": "campaign", "workload": "histogram",
 *        "trials": 200, "seed": 7, "shard_trials": 50}
 *     ]
 *   }
 *
 * Jobs split into shards, the unit of scheduling, isolation, retry,
 * and caching: a sweep job is one shard; a campaign job with
 * shard_trials = K splits into ceil(trials / K) contiguous trial
 * ranges. Trial t always draws from splitMix64(seed, t) regardless
 * of the split, so any sharding merges to the same tally.
 *
 * Every job has a canonical key=value rendering (canonical()) that
 * is the job's identity: the spec hash (queue-journal binding), the
 * result-cache key, and the merged manifest's "spec" section all
 * derive from it, never from the raw JSON text — reformatting a spec
 * file does not invalidate caches.
 *
 * The "fault" field ("crash" | "hang") is test instrumentation in
 * the --seed-corruption tradition: the worker process deliberately
 * aborts or stalls inside the shard so supervisor tests can provoke
 * retry, watchdog, and quarantine paths deterministically.
 */

#ifndef MBAVF_SERVE_SPEC_HH
#define MBAVF_SERVE_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace mbavf::serve
{

/** What one job computes. */
enum class JobType : std::uint8_t
{
    Sweep,    ///< mode sweep + SER (core/sweep.hh)
    Campaign, ///< injection campaign tally (inject/campaign.hh)
};

/** Stable job-type name ("sweep" / "campaign"). */
const char *jobTypeName(JobType type);

/** One analysis job parsed from a spec file. */
struct JobConfig
{
    JobType type = JobType::Sweep;
    std::string workload;
    unsigned scale = 1;

    // Sweep configuration (mirrors the mbavf CLI defaults).
    std::string structure = "l1";
    std::string scheme = "parity";
    std::string style;        ///< empty = structure default
    unsigned interleave = 2;
    unsigned modes = 8;
    unsigned windows = 0;
    bool shieldDue = false;
    double totalFit = 100.0;
    std::string arenaIn;      ///< sweep a saved arena (no workload)

    // Campaign configuration.
    std::uint64_t trials = 1000;
    std::uint64_t seed = 1;
    std::string kind = "register";
    double watchdog = 8.0;
    std::string protect = "none";
    unsigned protectDomain = 8;
    std::uint64_t shardTrials = 0; ///< 0 = the whole job is one shard

    // Stratified campaign (inject/stratified.hh): shards become
    // contiguous ranges of the deterministic pick sequence, so any
    // split merges to the same per-stratum tallies. The canonical
    // form only grows when stratify is on — uniform job identities
    // (and their cache keys) are untouched.
    bool stratify = false;
    unsigned stratifyWindows = 8;
    unsigned stratifyClasses = 64;
    std::uint64_t budget = 0; ///< injected-trial budget; 0 = trials

    /** Test instrumentation: "", "crash", or "hang". */
    std::string fault;

    /** Trials (uniform) or picks (stratified) the job runs. */
    std::uint64_t
    effectiveTrials() const
    {
        return stratify && budget != 0 ? budget : trials;
    }

    /** The structure-appropriate style when none was given. */
    std::string effectiveStyle() const;

    /**
     * Deterministic key=value identity of this job — stable across
     * spec-file reformatting, field order, and defaulted fields.
     */
    std::string canonical() const;
};

/** A parsed job-spec file. */
struct JobSpec
{
    std::vector<JobConfig> jobs;

    /** Parse a spec document. False + @p error on malformation. */
    static bool parse(const obs::JsonValue &doc, JobSpec &out,
                      std::string &error);

    /** Read + parse @p path. */
    static bool load(const std::string &path, JobSpec &out,
                     std::string &error);

    /**
     * Identity of the whole spec: FNV-1a over every job's canonical
     * form plus the content hash of every referenced input file
     * (arenas), so editing an input invalidates the queue journal
     * and every cache key derived from it. False + @p error when an
     * input file cannot be read.
     */
    bool hash(std::uint64_t &out, std::string &error) const;
};

/** One schedulable unit: a whole sweep job or a campaign range. */
struct ShardSpec
{
    std::size_t job = 0;           ///< index into JobSpec::jobs
    std::uint64_t firstTrial = 0;  ///< campaign shards only
    std::uint64_t numTrials = 0;   ///< 0 for sweep shards

    /** The shard's cache identity: job canonical + trial range. */
    std::string canonical(const JobConfig &config) const;
};

/** Split every job into its shards, in job order. */
std::vector<ShardSpec> shardJobs(const JobSpec &spec);

} // namespace mbavf::serve

#endif // MBAVF_SERVE_SPEC_HH
