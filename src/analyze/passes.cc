#include "analyze/passes.hh"

#include <map>
#include <set>
#include <vector>

#include "common/bits.hh"

namespace mbavf::analyze
{

std::string
tagWhere(InstrTag tag)
{
    if (tag == noInstrTag)
        return "untracked instruction";
    return "kernel " + std::to_string(tagKernel(tag)) + " pc " +
           std::to_string(tagPc(tag));
}

namespace
{

/** Per-static-instruction tally of one dataflow defect pattern. */
struct TagTally
{
    std::uint64_t instances = 0;
    std::uint64_t defective = 0;
};

} // namespace

void
lintDataflow(const DataflowLog &log, const Liveness &liveness,
             CheckReport &report)
{
    const std::uint64_t num_defs = log.size();

    // One forward pass marks every definition that some later
    // definition consumes; anchors (tag == noInstrTag) count as
    // consumers too — an address use keeps a value "used" even
    // though address anchors themselves are never flagged.
    std::vector<bool> used(num_defs, false);
    for (DefId d = 0; d < num_defs; ++d) {
        const unsigned n = log.numSrcs(d);
        for (unsigned i = 0; i < n; ++i) {
            const SrcUse s = log.src(d, i);
            if (s.def != noDef && s.def < num_defs)
                used[s.def] = true;
        }
    }

    // Aggregate per static instruction: an instruction is broken
    // only when every dynamic instance shows the pattern. std::map
    // keys the report order by tag, so findings come out sorted.
    std::map<InstrTag, TagTally> dead;
    std::map<InstrTag, TagTally> masked;
    for (DefId d = 0; d < num_defs; ++d) {
        const InstrTag tag = log.defTag(d);
        if (tag == noInstrTag)
            continue; // synthetic anchors are not instructions
        const bool consumed = used[d] || log.outputMask(d) != 0;
        TagTally &dt = dead[tag];
        ++dt.instances;
        if (!consumed)
            ++dt.defective;
        TagTally &mt = masked[tag];
        ++mt.instances;
        if (consumed && liveness.relevance(d) == 0)
            ++mt.defective;
    }

    for (const auto &[tag, tally] : dead) {
        if (tally.defective == tally.instances) {
            report.error(
                "flow.dead-def", tagWhere(tag),
                "all " + std::to_string(tally.instances) +
                    " value(s) this instruction produced are never "
                    "consumed and never reach program output");
        }
    }
    for (const auto &[tag, tally] : masked) {
        // Fully-dead instructions are flow.dead-def's finding; the
        // masked-output code is for values that ARE consumed yet can
        // never matter. Mixed consumed/unconsumed instances still
        // qualify when every consumed one is masked and none of the
        // unconsumed ones could rescue relevance (they have none).
        const TagTally &dt = dead.find(tag)->second;
        if (dt.defective == dt.instances)
            continue;
        const std::uint64_t consumed_instances =
            tally.instances - dt.defective;
        if (consumed_instances > 0 &&
            tally.defective == consumed_instances) {
            report.error(
                "flow.masked-output", tagWhere(tag),
                "all " + std::to_string(consumed_instances) +
                    " consumed value(s) of this instruction are "
                    "fully logic-masked: no produced bit can ever "
                    "affect program output");
        }
    }
}

void
lintRegisterEvents(
    const std::unordered_map<std::uint64_t, WordEventLog> &logs,
    const DataflowLog &dataflow, CheckReport &report)
{
    // flow.overwrite aggregates per writing instruction across every
    // register; flow.uninit-read reports per instance (one read of
    // never-written state is already a defect, and the per-code cap
    // bounds a systemic flood). Ordered containers keep the report
    // deterministic over the unordered log map.
    std::map<InstrTag, TagTally> writes;
    std::map<std::pair<InstrTag, std::uint64_t>, std::uint64_t>
        uninit;

    for (const auto &[container, log] : logs) {
        bool seen_write = false;
        const WordEvent *last_write = nullptr;
        bool read_since_write = false;
        for (const WordEvent &e : log.events) {
            if (e.kind == WordEvent::Kind::Write) {
                if (last_write && !read_since_write &&
                    (last_write->mask & ~e.mask) == 0 &&
                    last_write->tag != noInstrTag) {
                    ++writes[last_write->tag].defective;
                }
                if (e.tag != noInstrTag)
                    ++writes[e.tag].instances;
                last_write = &e;
                read_since_write = false;
                seen_write = true;
            } else {
                if (!seen_write) {
                    ++uninit[{dataflow.defTag(e.def), container}];
                }
                if (last_write && (e.mask & last_write->mask) != 0)
                    read_since_write = true;
            }
        }
    }

    for (const auto &[tag, tally] : writes) {
        if (tally.instances > 0 &&
            tally.defective == tally.instances) {
            report.error(
                "flow.overwrite", tagWhere(tag),
                "all " + std::to_string(tally.instances) +
                    " register write(s) this instruction made were "
                    "fully overwritten before any read");
        }
    }
    for (const auto &[key, count] : uninit) {
        report.error(
            "flow.uninit-read",
            tagWhere(key.first) + " register " +
                std::to_string(key.second),
            std::to_string(count) +
                " read(s) of this register before its first "
                "tracked write (uninitialized data consumed)");
    }
}

void
lintDomainCoverage(const PhysicalArray &array,
                   const LifetimeStore &store,
                   const ProtectionScheme &scheme,
                   const DomainLintOptions &opt, CheckReport &report)
{
    // A scheme that never detects a single flip makes no protection
    // claim; there is no coverage to have gaps in.
    if (scheme.action(1) == FaultAction::Undetected)
        return;

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();

    // domain.uncovered: a bit outside every protection domain whose
    // word holds ACE time is silently unprotected — a flip there is
    // invisible to the scheme yet can corrupt consumed data.
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            const PhysBit pb = array.at(r, c);
            if (pb.domain != invalidDomain)
                continue;
            unsigned bit_in_word = 0;
            const WordLifetime *life = store.findBit(
                pb.container, pb.bitInContainer, bit_in_word);
            if (!life)
                continue;
            bool ace = false;
            for (const LifeSegment &s : life->segments())
                ace |= bitAt(s.aceMask, bit_in_word);
            if (!ace)
                continue;
            report.error(
                "domain.uncovered",
                "row " + std::to_string(r) + " col " +
                    std::to_string(c) + " (container " +
                    std::to_string(pb.container) + " bit " +
                    std::to_string(pb.bitInContainer) + ")",
                "bit with ACE time belongs to no protection domain "
                "of scheme " + scheme.name());
        }
    }

    // domain.mode-undetectable: place every contiguous wordline mode
    // up to the cover budget and count the flips each protection
    // domain absorbs; a count the scheme's action table misses is a
    // spatial-fault hole in an otherwise protective layout. One
    // finding per (mode, flip count) — every anchor repeating the
    // same interleave pattern would repeat the same finding.
    std::set<std::pair<unsigned, unsigned>> reported;
    std::vector<DomainId> domains;
    std::vector<unsigned> flips;
    for (unsigned m = 2; m <= opt.coverModes && m <= cols; ++m) {
        for (std::uint64_t r = 0; r < rows; ++r) {
            for (std::uint64_t c = 0; c + m <= cols; ++c) {
                domains.clear();
                flips.clear();
                for (unsigned i = 0; i < m; ++i) {
                    const PhysBit pb = array.at(r, c + i);
                    if (pb.domain == invalidDomain)
                        continue; // domain.uncovered's finding
                    std::size_t j = 0;
                    for (; j < domains.size(); ++j) {
                        if (domains[j] == pb.domain)
                            break;
                    }
                    if (j == domains.size()) {
                        domains.push_back(pb.domain);
                        flips.push_back(0);
                    }
                    ++flips[j];
                }
                for (std::size_t j = 0; j < domains.size(); ++j) {
                    if (scheme.action(flips[j]) !=
                        FaultAction::Undetected) {
                        continue;
                    }
                    if (!reported.insert({m, flips[j]}).second)
                        continue;
                    report.error(
                        "domain.mode-undetectable",
                        "mode " + std::to_string(m) +
                            "x1 anchor row " + std::to_string(r) +
                            " col " + std::to_string(c),
                        std::to_string(flips[j]) +
                            " simultaneous flip(s) land in one "
                            "protection domain, which scheme " +
                            scheme.name() + " cannot detect");
                }
            }
        }
    }
}

} // namespace mbavf::analyze
