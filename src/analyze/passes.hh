/**
 * @file
 * Dataflow static-analysis passes over one instrumented run.
 *
 * Where mbavf_lint validates the *artifacts* the AVF math consumes
 * (lifetimes, event streams, geometry), these passes judge the
 * *program* and the *protection configuration*: wasted or suspicious
 * dataflow the measured workload exhibits, and coverage gaps a
 * protection layout leaves open. All findings report through the
 * same CheckReport machinery with stable dotted codes.
 *
 * Program-flow passes (lintDataflow / lintRegisterEvents), with
 * per-static-instruction aggregation — one dynamic instance of a
 * pattern is normal program behavior (loop-exit values, logic
 * masking), so an instruction is flagged only when *every* dynamic
 * instance it produced exhibits the defect:
 *
 * - flow.dead-def       every value this instruction produced is
 *                       never consumed and never marked as output
 * - flow.masked-output  every value is consumed, yet logic masking
 *                       gives all of them zero output relevance
 * - flow.overwrite      every register write this instruction made
 *                       was fully overwritten before any read
 * - flow.uninit-read    an instruction consumed a register before
 *                       its first tracked write (per-instance: one
 *                       uninitialized read is already a defect)
 *
 * Protection-coverage passes (lintDomainCoverage), skipped entirely
 * under a scheme that never detects anything (no protection claim,
 * no gap to find):
 *
 * - domain.uncovered          a bit with ACE time sits outside every
 *                             protection domain of a protective
 *                             scheme
 * - domain.mode-undetectable  a contiguous multi-bit fault mode
 *                             within the covered size budget lands
 *                             enough flips inside one domain that
 *                             the scheme misses them (geometry-only:
 *                             derived from the layout, independent
 *                             of the workload)
 */

#ifndef MBAVF_ANALYZE_PASSES_HH
#define MBAVF_ANALYZE_PASSES_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "check/report.hh"
#include "common/types.hh"
#include "core/layout.hh"
#include "core/lifetime.hh"
#include "core/lifetime_builder.hh"
#include "core/protection.hh"
#include "trace/dataflow.hh"

namespace mbavf::analyze
{

/** Display form of a static instruction: "kernel K pc P". */
std::string tagWhere(InstrTag tag);

/** flow.dead-def and flow.masked-output over the dataflow trace. */
void lintDataflow(const DataflowLog &log, const Liveness &liveness,
                  CheckReport &report);

/**
 * flow.overwrite and flow.uninit-read over raw per-register event
 * logs (RegFileAvfProbe::logs()). @p dataflow resolves reading
 * definitions to their instruction for uninit-read attribution.
 */
void lintRegisterEvents(
    const std::unordered_map<std::uint64_t, WordEventLog> &logs,
    const DataflowLog &dataflow, CheckReport &report);

/** Options for the protection-coverage passes. */
struct DomainLintOptions
{
    /**
     * Contiguous-wordline fault modes 2x1 .. coverModes x1 are
     * checked for domain.mode-undetectable.
     */
    unsigned coverModes = 4;
};

/** domain.uncovered and domain.mode-undetectable over @p array. */
void lintDomainCoverage(const PhysicalArray &array,
                        const LifetimeStore &store,
                        const ProtectionScheme &scheme,
                        const DomainLintOptions &opt,
                        CheckReport &report);

} // namespace mbavf::analyze

#endif // MBAVF_ANALYZE_PASSES_HH
