/**
 * @file
 * Per-instruction MB-AVF attribution with an exact conservation
 * invariant.
 *
 * computeMbAvf() answers "how vulnerable is this structure"; the
 * attribution engine answers "which instruction's data is at risk".
 * attributeMbAvf() re-runs the same group sweep over the same
 * elementary time slices, but instead of only accumulating each
 * non-unACE slice into a class total it also charges the slice —
 * whole, to exactly one member bit's defining instruction (the
 * InstrTag carried on the member's active LifeSegment). Charging is
 * a partition of the slice integral, so per-tag integer group-cycle
 * sums add up to computeMbAvf()'s raw totals *exactly*, per outcome
 * class, and checkConservation() asserts that equality bit-for-bit.
 *
 * The charge rule is deterministic and causal: the charged member is
 * the first member in pattern-offset order that exhibits the group's
 * outcome class —
 *
 * - SDC: first ACE-live member bit in an unprotected (Undetected)
 *   region;
 * - true DUE: first ACE-live member bit in a Detected region (the
 *   member whose live data the detection saves, also under
 *   due-shields-SDC);
 * - false DUE: first read-shadowed member bit in a Detected region
 *   (the dead-but-read data whose flip would still trip detection).
 *
 * The sweep parallelizes exactly like computeMbAvf(): anchor-row
 * bands of thread-count-independent granularity whose per-tag
 * partial sums are plain integer additions, so results are
 * bit-identical at any --threads.
 */

#ifndef MBAVF_ANALYZE_ATTRIBUTION_HH
#define MBAVF_ANALYZE_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/fault_mode.hh"
#include "core/layout.hh"
#include "core/lifetime.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"

namespace mbavf::analyze
{

/** Outcome-class indices of the cycles arrays (OutcomeAccumulator). */
inline constexpr unsigned attrSdc = 0;
inline constexpr unsigned attrTrueDue = 1;
inline constexpr unsigned attrFalseDue = 2;

/** Integer MB-AVF contribution charged to one static instruction. */
struct TagContribution
{
    /** Charged instruction; noInstrTag = untracked data (fills,
     *  pre-first-write garbage). */
    InstrTag tag = noInstrTag;

    /** Group-cycles per outcome class {SDC, trueDUE, falseDUE}. */
    std::array<Cycle, 3> cycles = {0, 0, 0};

    Cycle total() const { return cycles[0] + cycles[1] + cycles[2]; }
};

/** Result of one attribution sweep. */
struct AttributionResult
{
    /**
     * Per-tag contributions in ascending tag order (noInstrTag, the
     * largest encoding, sorts last). Tags with no contribution are
     * absent.
     */
    std::vector<TagContribution> perTag;

    /** Column sums over perTag — equal to MbAvfResult::cycles. */
    std::array<Cycle, 3> cycles = {0, 0, 0};

    std::uint64_t numGroups = 0;
    Cycle horizon = 0;

    /** Fraction of the total AVF charged to @p c (0 when AVF is 0). */
    double share(const TagContribution &c) const;
};

/**
 * Attribute the MB-AVF of @p mode on @p array under @p scheme to the
 * defining instructions recorded in @p store's segment tags.
 * Windowing options are ignored; threading options behave exactly as
 * in computeMbAvf().
 */
AttributionResult attributeMbAvf(const PhysicalArray &array,
                                 const LifetimeStore &store,
                                 const ProtectionScheme &scheme,
                                 const FaultMode &mode,
                                 const MbAvfOptions &opt);

/** Per-kernel rollup of an attribution (ascending kernel id;
 *  untracked contributions roll into kernel == noKernel). */
struct KernelContribution
{
    static constexpr unsigned noKernel = 0xFFFFFFFFu;

    unsigned kernel = noKernel;
    std::array<Cycle, 3> cycles = {0, 0, 0};

    Cycle total() const { return cycles[0] + cycles[1] + cycles[2]; }
};

std::vector<KernelContribution>
rollupByKernel(const AttributionResult &attr);

/**
 * Conservation check: the attribution's per-class column sums (and
 * its perTag rows re-summed from scratch) must equal @p reference's
 * raw integer cycle totals exactly, and group count and horizon must
 * match. Returns the empty string when conserved, else a description
 * of the first violation.
 */
std::string checkConservation(const AttributionResult &attr,
                              const MbAvfResult &reference);

} // namespace mbavf::analyze

#endif // MBAVF_ANALYZE_ATTRIBUTION_HH
