#include "analyze/attribution.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/mbavf_kernel.hh"

namespace mbavf::analyze
{

using detail::classifyRegion;
using detail::combineOutcomes;
using detail::maxModeBits;

namespace
{

/** Resolved view of one member bit of a fault group. */
struct MemberBit
{
    const WordLifetime *life = nullptr; ///< null = always Unace
    unsigned bitInWord = 0;
    DomainId domain = invalidDomain;
};

/** Per-band charge accumulator: tag -> per-class group-cycles. */
struct TagAccumulator
{
    std::unordered_map<InstrTag, std::array<Cycle, 3>> cycles;

    void
    add(InstrTag tag, unsigned idx, Cycle amount)
    {
        cycles[tag][idx] += amount;
    }

    /**
     * Fold @p other in. Plain integer additions keyed by tag: the
     * result is independent of both iteration and merge order, which
     * is what keeps the banded sweep bit-identical at any thread
     * count even though the map itself is unordered.
     */
    void
    mergeFrom(const TagAccumulator &other)
    {
        for (const auto &[tag, c] : other.cycles) {
            auto &mine = cycles[tag];
            for (unsigned i = 0; i < 3; ++i)
                mine[i] += c[i];
        }
    }
};

/** Per-group sweep state shared across anchors to avoid reallocation. */
struct SweepScratch
{
    std::vector<Cycle> boundaries;
};

/**
 * Sweep one fault group exactly like core/mbavf.cc's sweepGroup —
 * same region discovery, same word dedup, same elementary slices —
 * and charge every non-unACE slice to one member's segment tag per
 * the rule in the header comment.
 */
void
sweepGroupAttributed(std::vector<MemberBit> &members,
                     const ProtectionScheme &scheme, Cycle horizon,
                     bool due_shields_sdc, SweepScratch &scratch,
                     TagAccumulator &acc)
{
    std::array<DomainId, maxModeBits> domains;
    std::array<FaultAction, maxModeBits> actions;
    std::array<unsigned, maxModeBits> regionOf;
    unsigned num_regions = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        unsigned r = 0;
        for (; r < num_regions; ++r) {
            if (domains[r] == members[i].domain)
                break;
        }
        if (r == num_regions)
            domains[num_regions++] = members[i].domain;
        regionOf[i] = r;
    }
    std::array<unsigned, maxModeBits> region_size{};
    for (std::size_t i = 0; i < members.size(); ++i)
        ++region_size[regionOf[i]];
    for (unsigned r = 0; r < num_regions; ++r)
        actions[r] = scheme.action(region_size[r]);

    std::array<const WordLifetime *, maxModeBits> words;
    std::array<std::size_t, maxModeBits> cursors{};
    std::array<unsigned, maxModeBits> wordOf;
    unsigned num_words = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (!members[i].life) {
            wordOf[i] = maxModeBits; // sentinel: always Unace
            continue;
        }
        unsigned w = 0;
        for (; w < num_words; ++w) {
            if (words[w] == members[i].life)
                break;
        }
        if (w == num_words)
            words[num_words++] = members[i].life;
        wordOf[i] = w;
    }
    if (num_words == 0)
        return; // every bit Unace for the whole horizon

    auto &bounds = scratch.boundaries;
    bounds.clear();
    for (unsigned w = 0; w < num_words; ++w) {
        for (const LifeSegment &s : words[w]->segments()) {
            if (s.begin >= horizon)
                break;
            bounds.push_back(s.begin);
            bounds.push_back(std::min(s.end, horizon));
        }
    }
    if (bounds.empty())
        return;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    // Per slice, besides the per-region live/read flags, remember the
    // first member (pattern-offset order) of each charge class; the
    // group outcome then picks which one the slice is charged to.
    constexpr std::size_t noMember = ~std::size_t(0);
    std::array<const LifeSegment *, maxModeBits> active;
    std::array<bool, maxModeBits> region_live;
    std::array<bool, maxModeBits> region_read;
    Cycle prev = bounds.front();
    for (std::size_t bi = 1; bi < bounds.size(); ++bi) {
        Cycle next = bounds[bi];

        for (unsigned w = 0; w < num_words; ++w) {
            const auto &segs = words[w]->segments();
            std::size_t &cur = cursors[w];
            while (cur < segs.size() && segs[cur].end <= prev)
                ++cur;
            active[w] = (cur < segs.size() && segs[cur].begin <= prev)
                ? &segs[cur]
                : nullptr;
        }

        for (unsigned r = 0; r < num_regions; ++r) {
            region_live[r] = false;
            region_read[r] = false;
        }
        std::size_t first_sdc = noMember;
        std::size_t first_tdue = noMember;
        std::size_t first_fdue = noMember;
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (wordOf[i] == maxModeBits)
                continue;
            const LifeSegment *s = active[wordOf[i]];
            if (!s)
                continue;
            unsigned r = regionOf[i];
            if (bitAt(s->aceMask, members[i].bitInWord)) {
                region_live[r] = true;
                if (actions[r] == FaultAction::Undetected &&
                    first_sdc == noMember) {
                    first_sdc = i;
                } else if (actions[r] == FaultAction::Detected &&
                           first_tdue == noMember) {
                    first_tdue = i;
                }
            } else if (bitAt(s->readMask, members[i].bitInWord)) {
                region_read[r] = true;
                if (actions[r] == FaultAction::Detected &&
                    first_fdue == noMember) {
                    first_fdue = i;
                }
            }
        }

        bool has_sdc = false, has_tdue = false, has_fdue = false;
        for (unsigned r = 0; r < num_regions; ++r) {
            Outcome o = classifyRegion(actions[r], region_live[r],
                                       region_live[r] || region_read[r]);
            has_sdc |= o == Outcome::Sdc;
            has_tdue |= o == Outcome::TrueDue;
            has_fdue |= o == Outcome::FalseDue;
        }
        const Outcome outcome = combineOutcomes(
            has_sdc, has_tdue, has_fdue, due_shields_sdc);
        if (outcome != Outcome::Unace) {
            // A group outcome of class X implies a member of charge
            // class X exists: classifyRegion only emits X when some
            // member bit of that region carries the matching mask.
            std::size_t charged;
            switch (outcome) {
              case Outcome::Sdc: charged = first_sdc; break;
              case Outcome::TrueDue: charged = first_tdue; break;
              default: charged = first_fdue; break;
            }
            if (charged == noMember)
                panic("attribution: outcome with no charged member");
            acc.add(active[wordOf[charged]]->tag,
                    detail::OutcomeAccumulator::classIndex(outcome),
                    next - prev);
        }
        prev = next;
    }
}

} // namespace

double
AttributionResult::share(const TagContribution &c) const
{
    const Cycle total = cycles[0] + cycles[1] + cycles[2];
    return total ? static_cast<double>(c.total()) /
                       static_cast<double>(total)
                 : 0.0;
}

AttributionResult
attributeMbAvf(const PhysicalArray &array, const LifetimeStore &store,
               const ProtectionScheme &scheme, const FaultMode &mode,
               const MbAvfOptions &opt)
{
    if (opt.horizon == 0)
        fatal("attribution horizon must be nonzero");
    if (mode.size() > maxModeBits)
        fatal("fault mode larger than ", maxModeBits, " bits");

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const std::uint64_t span_r =
        static_cast<std::uint64_t>(mode.maxDRow()) + 1;
    const std::uint64_t span_c =
        static_cast<std::uint64_t>(mode.maxDCol()) + 1;

    AttributionResult result;
    result.horizon = opt.horizon;
    result.numGroups = mode.numGroups(rows, cols);
    if (span_r > rows || span_c > cols || result.numGroups == 0)
        return result;

    auto sweep_rows = [&](std::uint64_t row_begin,
                          std::uint64_t row_end, TagAccumulator &out) {
        SweepScratch scratch;
        std::vector<MemberBit> row_cache;
        std::vector<MemberBit> members(mode.size());

        for (std::uint64_t r = row_begin; r < row_end; ++r) {
            row_cache.assign(std::size_t(span_r) * cols, MemberBit{});
            for (std::uint64_t dr = 0; dr < span_r; ++dr) {
                for (std::uint64_t c = 0; c < cols; ++c) {
                    PhysBit pb = array.at(r + dr, c);
                    MemberBit &m = row_cache[dr * cols + c];
                    m.domain = pb.domain;
                    m.life = store.findBit(pb.container,
                                           pb.bitInContainer,
                                           m.bitInWord);
                }
            }

            for (std::uint64_t c = 0; c + span_c <= cols; ++c) {
                bool any_life = false;
                for (unsigned i = 0; i < mode.size(); ++i) {
                    const PatternOffset &o = mode.offsets()[i];
                    members[i] =
                        row_cache[std::size_t(o.dRow) * cols + c +
                                  static_cast<std::uint64_t>(o.dCol)];
                    any_life |= members[i].life != nullptr;
                }
                if (!any_life)
                    continue;
                sweepGroupAttributed(members, scheme, opt.horizon,
                                     opt.dueShieldsSdc, scratch, out);
            }
        }
    };

    const std::uint64_t anchor_rows = rows - span_r + 1;

    TagAccumulator acc;
    if (opt.numThreads == 1) {
        sweep_rows(0, anchor_rows, acc);
    } else {
        // Same band partition as computeMbAvf: granularity depends
        // only on the range, and the per-tag integer sums make the
        // merge order immaterial — bit-identical at any pool width.
        ensureParallelThreads(opt.numThreads);
        const std::uint64_t grain =
            std::max<std::uint64_t>(1, anchor_rows / 64);
        acc = mapReduce(
            std::uint64_t(0), anchor_rows, grain, TagAccumulator{},
            [&](std::uint64_t lo, std::uint64_t hi) {
                TagAccumulator part;
                sweep_rows(lo, hi, part);
                return part;
            },
            [](TagAccumulator &into, TagAccumulator &&part) {
                into.mergeFrom(part);
            });
    }

    result.perTag.reserve(acc.cycles.size());
    for (const auto &[tag, c] : acc.cycles) {
        TagContribution tc;
        tc.tag = tag;
        tc.cycles = c;
        result.perTag.push_back(tc);
        for (unsigned i = 0; i < 3; ++i)
            result.cycles[i] += c[i];
    }
    std::sort(result.perTag.begin(), result.perTag.end(),
              [](const TagContribution &a, const TagContribution &b) {
                  return a.tag < b.tag;
              });
    return result;
}

std::vector<KernelContribution>
rollupByKernel(const AttributionResult &attr)
{
    std::vector<KernelContribution> out;
    for (const TagContribution &c : attr.perTag) {
        const unsigned kernel = c.tag == noInstrTag
            ? KernelContribution::noKernel
            : tagKernel(c.tag);
        // perTag is tag-ordered, so equal kernels are adjacent.
        if (out.empty() || out.back().kernel != kernel) {
            KernelContribution kc;
            kc.kernel = kernel;
            out.push_back(kc);
        }
        for (unsigned i = 0; i < 3; ++i)
            out.back().cycles[i] += c.cycles[i];
    }
    return out;
}

std::string
checkConservation(const AttributionResult &attr,
                  const MbAvfResult &reference)
{
    if (attr.horizon != reference.horizon) {
        return "horizon mismatch: attribution " +
               std::to_string(attr.horizon) + ", reference " +
               std::to_string(reference.horizon);
    }
    if (attr.numGroups != reference.numGroups) {
        return "group count mismatch: attribution " +
               std::to_string(attr.numGroups) + ", reference " +
               std::to_string(reference.numGroups);
    }
    static const char *const class_names[3] = {"SDC", "trueDUE",
                                               "falseDUE"};
    std::array<Cycle, 3> resummed = {0, 0, 0};
    for (const TagContribution &c : attr.perTag) {
        for (unsigned i = 0; i < 3; ++i)
            resummed[i] += c.cycles[i];
    }
    for (unsigned i = 0; i < 3; ++i) {
        if (resummed[i] != attr.cycles[i]) {
            return std::string("internal ") + class_names[i] +
                   " sum drifted from the recorded column total: " +
                   std::to_string(resummed[i]) + " != " +
                   std::to_string(attr.cycles[i]);
        }
        if (attr.cycles[i] != reference.cycles[i]) {
            return std::string(class_names[i]) +
                   " not conserved: per-tag sum " +
                   std::to_string(attr.cycles[i]) +
                   " != reference total " +
                   std::to_string(reference.cycles[i]);
        }
    }
    return {};
}

} // namespace mbavf::analyze
