/**
 * @file
 * Paper Figure 6: effect of fault mode on DUE MB-AVF in the L1 with
 * x4 way-physical interleaving — (a) parity, (b) SEC-DED ECC.
 * Values are normalized to the parity SB-AVF.
 *
 * Expected shapes: MB-AVF grows with fault-mode size (a larger group
 * is more likely to contain an ACE bit); with SEC-DED, an Mx1 fault
 * behaves like an (M/I)x1 fault with parity — e.g. 8x1 with SEC-DED
 * matches 2x1 with parity under x4 interleaving.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig6_fault_modes", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::vector<unsigned> modes = {2, 3, 4, 5, 6, 7, 8};

    std::cout << "Figure 6: DUE MB-AVF by fault mode, L1, x4 "
                 "way-physical interleaving\n";

    ParityScheme parity;
    SecDedScheme secded;
    std::vector<const ProtectionScheme *> schemes = {&parity, &secded};

    std::vector<std::string> header = {"workload"};
    for (unsigned m : modes)
        header.push_back(std::to_string(m) + "x1");
    std::vector<Table> tables(2, Table(header));
    std::vector<std::vector<RunningStats>> geo(
        2, std::vector<RunningStats>(modes.size()));

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 4);
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        // Normalize to the structure's single-bit DUE AVF (parity).
        double sb =
            computeSbAvf(*array, run.l1, parity, opt).avf.due();

        for (std::size_t s = 0; s < schemes.size(); ++s) {
            tables[s].beginRow().cell(name);
            for (std::size_t i = 0; i < modes.size(); ++i) {
                double mb =
                    computeMbAvf(*array, run.l1, *schemes[s],
                                 FaultMode::mx1(modes[i]), opt)
                        .avf.due();
                double ratio = sb > 0 ? mb / sb : 0.0;
                geo[s][i].add(ratio);
                tables[s].cell(ratio, 3);
            }
        }
    }

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::cout << "\n-- (" << (s ? 'b' : 'a') << ") DUE MB-AVF / "
                  << "SB-AVF, " << schemes[s]->name() << " --\n\n";
        tables[s].beginRow().cell("geomean");
        for (std::size_t i = 0; i < modes.size(); ++i)
            tables[s].cell(geo[s][i].geomean(), 3);
        bench.emit(tables[s]);
    }

    std::cout << "\nMB-AVF increases with fault-mode size; Mx1 under "
                 "SEC-DED tracks (M/4)x1 under\nparity (both leave "
                 "the same number of lines uncorrected), e.g. 8x1 "
                 "SEC-DED\n~= 2x1 parity here with x4 interleaving.\n";
    return 0;
}
