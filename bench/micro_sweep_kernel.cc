/**
 * @file
 * Microbenchmark: the sweep-kernel implementation ladder.
 *
 * Runs the Figure 4 workload shape — L1 cache lifetimes, parity, x2
 * interleaving — through four paths per workload:
 *
 *   ref     max_mode independent computeMbAvf walks over the store
 *           (MbAvfOptions::referenceKernel)
 *   scalar  the single-pass flat-arena kernel, portable scalar
 *           implementation (MbAvfOptions::scalarKernel)
 *   simd    the same kernel with runtime dispatch enabled — the AVX2
 *           lane-transposed path where the host supports it, the
 *           scalar path otherwise
 *   mmap    the simd path again, but sweeping an arena persisted
 *           with core/arena_io.hh and mapped back from disk
 *
 * All four must produce bit-identical AVF fractions and window
 * series; the table records the per-workload times plus the
 * ref-over-simd and scalar-over-simd speedups and their geomeans.
 *
 *   micro_sweep_kernel [--workloads=a,b] [--scale=N] [--modes=8]
 *                      [--repeats=3] [--threads=N] [--min-speedup=X]
 *                      [--min-simd-speedup=Y]
 *
 * Exit status is nonzero if any path's results diverge from the
 * reference, if the geomean ref-over-simd speedup falls below
 * --min-speedup, or if the geomean scalar-over-simd speedup falls
 * below --min-simd-speedup (0 disables either gate; the SIMD gate is
 * skipped, with a note, when the host has no AVX2 path or
 * --modes=1 pins the dispatch to scalar). Workloads below the
 * --min-speedup floor are listed in the manifest's run section as
 * "below_floor", so CI failures name the regressing subset instead
 * of just the aggregate. CI runs both floors so a kernel perf
 * regression fails the bench-smoke job directly, independent of
 * runner-to-runner timing noise in the manifests.
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/arena_io.hh"
#include "core/lifetime_arena.hh"
#include "core/mbavf_kernel.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "obs/stopwatch.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

bool
sameSweep(const ModeSweep &a, const ModeSweep &b)
{
    if (a.results.size() != b.results.size())
        return false;
    for (std::size_t m = 0; m < a.results.size(); ++m) {
        const MbAvfResult &x = a.results[m];
        const MbAvfResult &y = b.results[m];
        if (x.avf.sdc != y.avf.sdc || x.avf.trueDue != y.avf.trueDue ||
            x.avf.falseDue != y.avf.falseDue ||
            x.numGroups != y.numGroups ||
            x.windows.size() != y.windows.size()) {
            return false;
        }
        for (std::size_t w = 0; w < x.windows.size(); ++w) {
            if (x.windows[w].sdc != y.windows[w].sdc ||
                x.windows[w].trueDue != y.windows[w].trueDue ||
                x.windows[w].falseDue != y.windows[w].falseDue) {
                return false;
            }
        }
    }
    return true;
}

/** Best-of-@p repeats wall time of one sweepModes() call, seconds. */
double
timeSweep(const PhysicalArray &array, const LifetimeStore &store,
          const ProtectionScheme &scheme, const MbAvfOptions &opt,
          unsigned max_mode, unsigned repeats, ModeSweep &out)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        obs::Stopwatch watch;
        ModeSweep sweep = sweepModes(array, store, scheme, opt, max_mode);
        double s = watch.seconds();
        if (r == 0 || s < best)
            best = s;
        out = std::move(sweep);
    }
    return best;
}

/** Same, over a pre-built (here: disk-mapped) arena. */
double
timeSweepArena(const PhysicalArray &array, const LifetimeArena &arena,
               const ProtectionScheme &scheme, const MbAvfOptions &opt,
               unsigned max_mode, unsigned repeats, ModeSweep &out)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        obs::Stopwatch watch;
        ModeSweep sweep =
            sweepModesArena(array, arena, scheme, opt, max_mode);
        double s = watch.seconds();
        if (r == 0 || s < best)
            best = s;
        out = std::move(sweep);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("micro_sweep_kernel", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("modes", 8));
    const unsigned repeats =
        static_cast<unsigned>(args.getInt("repeats", 3));
    const double min_speedup = args.getDouble("min-speedup", 0.0);
    const double min_simd = args.getDouble("min-simd-speedup", 0.0);
    // --modes=1 dispatches to the scalar kernel by design, so the
    // simd and scalar columns measure the same code there.
    const bool simd_live =
        detail::avx2KernelAvailable() && max_mode > 1;

    std::cout << "sweep kernel ladder: reference per-mode path vs "
                 "scalar / simd / mmap arena kernel, "
              << max_mode << " modes (simd "
              << (simd_live ? "avx2" : "scalar fallback") << ")\n\n";

    Table table({"workload", "ref ms", "scalar ms", "simd ms",
                 "mmap ms", "speedup", "simd x"});
    RunningStats g_speedup;
    RunningStats g_simd;
    ParityScheme parity;
    bool identical = true;
    std::vector<std::string> below_floor;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array = makeCacheArray(geom, CacheInterleave::Logical, 2);

        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numWindows = 8;
        opt.numThreads = threads;

        ModeSweep ref, scalar, simd, mapped;
        opt.referenceKernel = true;
        double ref_s = timeSweep(*array, run.l1, parity, opt,
                                 max_mode, repeats, ref);
        opt.referenceKernel = false;
        opt.scalarKernel = true;
        double scalar_s = timeSweep(*array, run.l1, parity, opt,
                                    max_mode, repeats, scalar);
        opt.scalarKernel = false;
        double simd_s = timeSweep(*array, run.l1, parity, opt,
                                  max_mode, repeats, simd);

        // Persist + map back: the disk round trip must neither
        // change a single bit nor cost measurable sweep time.
        const std::string arena_path =
            "micro_sweep_" + name + ".arena.tmp";
        streamArenaFromStore(run.l1, arena_path, run.horizon);
        std::string error;
        std::optional<LifetimeArena> disk_arena =
            tryLoadArena(arena_path, error);
        if (!disk_arena) {
            std::cerr << "FAIL: cannot map " << arena_path << ": "
                      << error << "\n";
            return 1;
        }
        double mmap_s = timeSweepArena(*array, *disk_arena, parity,
                                       opt, max_mode, repeats, mapped);
        std::remove(arena_path.c_str());

        if (!sameSweep(ref, scalar) || !sameSweep(ref, simd) ||
            !sameSweep(ref, mapped)) {
            std::cerr << "FAIL: kernel results diverge from the "
                         "reference path on " << name << "\n";
            identical = false;
        }

        double speedup = simd_s > 0 ? ref_s / simd_s : 0.0;
        double simd_x = simd_s > 0 ? scalar_s / simd_s : 0.0;
        g_speedup.add(speedup);
        g_simd.add(simd_x);
        if (min_speedup > 0 && speedup < min_speedup)
            below_floor.push_back(name);
        table.beginRow()
            .cell(name)
            .cell(ref_s * 1e3, 2)
            .cell(scalar_s * 1e3, 2)
            .cell(simd_s * 1e3, 2)
            .cell(mmap_s * 1e3, 2)
            .cell(speedup, 2)
            .cell(simd_x, 2);
    }

    table.beginRow()
        .cell("geomean")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell(g_speedup.geomean(), 2)
        .cell(g_simd.geomean(), 2);
    bench.emit(table);
    bench.meta("modes", static_cast<std::uint64_t>(max_mode));
    bench.meta("repeats", static_cast<std::uint64_t>(repeats));
    bench.meta("min_speedup", min_speedup);
    bench.meta("min_simd_speedup", min_simd);
    bench.meta("simd", std::string(simd_live ? "avx2" : "scalar"));
    obs::JsonValue floor_list = obs::JsonValue::array();
    for (const std::string &name : below_floor)
        floor_list.push(obs::JsonValue(name));
    bench.meta("below_floor", std::move(floor_list));

    if (!identical) {
        std::cout << "\nRESULT MISMATCH between kernels\n";
        return 1;
    }
    std::cout << "\nresults bit-identical across all kernel paths\n";
    if (min_speedup > 0 && g_speedup.geomean() < min_speedup) {
        std::cout << "FAIL: geomean speedup "
                  << g_speedup.geomean() << "x below the required "
                  << min_speedup << "x";
        if (!below_floor.empty()) {
            std::cout << " (below floor:";
            for (const std::string &name : below_floor)
                std::cout << " " << name;
            std::cout << ")";
        }
        std::cout << "\n";
        return 1;
    }
    if (min_simd > 0) {
        if (!simd_live) {
            std::cout << "note: --min-simd-speedup skipped (no simd "
                         "path on this build/host)\n";
        } else if (g_simd.geomean() < min_simd) {
            std::cout << "FAIL: geomean simd-over-scalar speedup "
                      << g_simd.geomean() << "x below the required "
                      << min_simd << "x\n";
            return 1;
        }
    }
    return 0;
}
