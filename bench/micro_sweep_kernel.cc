/**
 * @file
 * Microbenchmark: single-pass multi-mode sweep kernel vs the
 * reference per-mode path.
 *
 * Runs the Figure 4 workload shape — L1 cache lifetimes, parity, x2
 * interleaving — through sweepModes() twice per workload: once with
 * MbAvfOptions::referenceKernel (max_mode independent computeMbAvf
 * walks over the LifetimeStore) and once on the default flat-arena
 * kernel (one traversal emits every mode). Both paths must produce
 * bit-identical AVF fractions and window series; the table records
 * the per-workload speedup and its geomean.
 *
 *   micro_sweep_kernel [--workloads=a,b] [--scale=N] [--modes=8]
 *                      [--repeats=3] [--threads=N] [--min-speedup=X]
 *
 * Exit status is nonzero if any workload's results diverge between
 * the two paths, or if the geomean speedup falls below
 * --min-speedup (0 disables the gate). CI runs this with a floor so
 * a kernel perf regression fails the bench-smoke job directly,
 * independent of runner-to-runner timing noise in the manifests.
 */

#include <iostream>
#include <string>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "obs/stopwatch.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

bool
sameSweep(const ModeSweep &a, const ModeSweep &b)
{
    if (a.results.size() != b.results.size())
        return false;
    for (std::size_t m = 0; m < a.results.size(); ++m) {
        const MbAvfResult &x = a.results[m];
        const MbAvfResult &y = b.results[m];
        if (x.avf.sdc != y.avf.sdc || x.avf.trueDue != y.avf.trueDue ||
            x.avf.falseDue != y.avf.falseDue ||
            x.numGroups != y.numGroups ||
            x.windows.size() != y.windows.size()) {
            return false;
        }
        for (std::size_t w = 0; w < x.windows.size(); ++w) {
            if (x.windows[w].sdc != y.windows[w].sdc ||
                x.windows[w].trueDue != y.windows[w].trueDue ||
                x.windows[w].falseDue != y.windows[w].falseDue) {
                return false;
            }
        }
    }
    return true;
}

/** Best-of-@p repeats wall time of one sweepModes() call, seconds. */
double
timeSweep(const PhysicalArray &array, const LifetimeStore &store,
          const ProtectionScheme &scheme, const MbAvfOptions &opt,
          unsigned max_mode, unsigned repeats, ModeSweep &out)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        obs::Stopwatch watch;
        ModeSweep sweep = sweepModes(array, store, scheme, opt, max_mode);
        double s = watch.seconds();
        if (r == 0 || s < best)
            best = s;
        out = std::move(sweep);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("micro_sweep_kernel", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("modes", 8));
    const unsigned repeats =
        static_cast<unsigned>(args.getInt("repeats", 3));
    const double min_speedup = args.getDouble("min-speedup", 0.0);

    std::cout << "sweep kernel: reference per-mode path vs "
                 "single-pass arena kernel, "
              << max_mode << " modes\n\n";

    Table table({"workload", "ref ms", "arena ms", "speedup"});
    RunningStats g_speedup;
    ParityScheme parity;
    bool identical = true;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array = makeCacheArray(geom, CacheInterleave::Logical, 2);

        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numWindows = 8;
        opt.numThreads = threads;

        ModeSweep ref, arena;
        opt.referenceKernel = true;
        double ref_s = timeSweep(*array, run.l1, parity, opt,
                                 max_mode, repeats, ref);
        opt.referenceKernel = false;
        double arena_s = timeSweep(*array, run.l1, parity, opt,
                                   max_mode, repeats, arena);

        if (!sameSweep(ref, arena)) {
            std::cerr << "FAIL: kernel results diverge from the "
                         "reference path on " << name << "\n";
            identical = false;
        }

        double speedup = arena_s > 0 ? ref_s / arena_s : 0.0;
        g_speedup.add(speedup);
        table.beginRow()
            .cell(name)
            .cell(ref_s * 1e3, 2)
            .cell(arena_s * 1e3, 2)
            .cell(speedup, 2);
    }

    table.beginRow()
        .cell("geomean")
        .cell("")
        .cell("")
        .cell(g_speedup.geomean(), 2);
    bench.emit(table);
    bench.meta("modes", static_cast<std::uint64_t>(max_mode));
    bench.meta("repeats", static_cast<std::uint64_t>(repeats));
    bench.meta("min_speedup", min_speedup);

    if (!identical) {
        std::cout << "\nRESULT MISMATCH between kernels\n";
        return 1;
    }
    std::cout << "\nresults bit-identical across both kernels\n";
    if (min_speedup > 0 && g_speedup.geomean() < min_speedup) {
        std::cout << "FAIL: geomean speedup "
                  << g_speedup.geomean() << "x below the required "
                  << min_speedup << "x\n";
        return 1;
    }
    return 0;
}
