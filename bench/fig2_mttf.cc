/**
 * @file
 * Paper Figure 2: MTTF of a 32 MB cache from temporal vs spatial
 * multi-bit faults across raw fault rates, for infinite and 100-year
 * data lifetimes and spatial-MBF fractions of 0.1% and 5%.
 *
 * The paper's conclusion this must reproduce: realistic spatial-MBF
 * rates give MTTFs 6-8 orders of magnitude *lower* than temporal
 * MBFs, and a 5% sMBF rate costs another two orders of magnitude
 * versus 0.1%.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "mttf/mttf.hh"

using namespace mbavf;

int
main()
{
    BenchReporter bench("fig2_mttf");
    std::cout << "Figure 2: 32MB-cache MTTF, temporal vs spatial "
                 "multi-bit faults\n\n";

    Table table({"FIT/bit", "tMBF (inf life)", "tMBF (100y life)",
                 "sMBF p=0.1%", "sMBF p=5%", "ratio t(100y)/s(0.1%)"});

    for (double fit : {1e-8, 1e-7, 1e-6, 1e-5, 1e-4}) {
        MttfParams p;
        p.fitPerBit = fit;

        double t_inf = tmbfMttfInfiniteHours(p);
        p.lifetimeHours = 100.0 * 24 * 365;
        double t_100 = tmbfMttfHours(p);

        p.smbfFraction = 0.001;
        double s_01 = smbfMttfHours(p);
        p.smbfFraction = 0.05;
        double s_5 = smbfMttfHours(p);

        auto sci = [](double v) {
            std::ostringstream os;
            os.precision(2);
            os << std::scientific << v;
            return os.str();
        };
        table.beginRow()
            .cell(sci(fit))
            .cell(sci(t_inf))
            .cell(sci(t_100))
            .cell(sci(s_01))
            .cell(sci(s_5))
            .cell(formatFixed(std::log10(t_100 / s_01), 1) +
                  " orders");
    }
    bench.emit(table);

    std::cout << "\nSpatial MBF MTTFs sit many orders of magnitude "
                 "below temporal MBF MTTFs\n(6-8 orders at realistic "
                 "rates), and limiting data lifetime to 100 years\n"
                 "raises tMBF MTTFs further - the paper's "
                 "justification for modeling sMBFs.\n";
    return 0;
}
