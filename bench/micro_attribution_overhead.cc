/**
 * @file
 * Microbenchmark: cost of per-instruction MB-AVF attribution.
 *
 * Attribution rides on an extra InstrTag column threaded from the
 * wavefront pipeline through the lifetime builder into every
 * LifeSegment. That column must be free when nobody asks for
 * attribution: computeMbAvf() never reads segment tags, so a tagged
 * store must sweep at the same speed as the identical store with
 * the tags stripped. This harness measures exactly that "disabled
 * cost", plus the price of the attribution sweep itself, per
 * workload on the VGPR array:
 *
 *   sweep ms   computeMbAvf on the instrumented (tagged) store
 *   strip ms   computeMbAvf on a rebuilt copy with tags stripped
 *   attr ms    attributeMbAvf on the tagged store
 *   disabled   sweep / strip — overhead of carrying unused tags
 *   attr x     attr / sweep — attribution over plain-sweep cost
 *
 * Every attribution result is conservation-checked against its
 * plain sweep (exact integer cycle sums per outcome class), and the
 * tagged and stripped sweeps must be bit-identical — the tag column
 * may never change a result, only annotate it.
 *
 *   micro_attribution_overhead [--workloads=a,b] [--scale=N]
 *       [--mode=M] [--repeats=3] [--threads=N]
 *       [--max-disabled-cost=X] [--max-attr-cost=Y]
 *
 * Exit status is nonzero if conservation fails, if the tagged and
 * stripped sweeps diverge, if the geomean disabled-cost ratio
 * exceeds --max-disabled-cost, or if the geomean attr-over-sweep
 * ratio exceeds --max-attr-cost (0 disables either gate). CI runs
 * the disabled-cost gate in bench-smoke so a regression that makes
 * the tag column cost measurable sweep time fails the job directly.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analyze/attribution.hh"
#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/layout.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "obs/stopwatch.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

/** Copy @p store with every segment's tag reset to noInstrTag. */
LifetimeStore
stripTags(const LifetimeStore &store)
{
    LifetimeStore out(store.wordWidth(), store.wordsPerContainer());
    for (const auto &entry : store.containers()) {
        ContainerLifetime &container = out.container(entry.first);
        for (std::size_t w = 0; w < entry.second.words.size(); ++w) {
            for (const LifeSegment &s : entry.second.words[w].segments())
                container.words[w].append(
                    {s.begin, s.end, s.aceMask, s.readMask});
        }
    }
    return out;
}

bool
sameResult(const MbAvfResult &a, const MbAvfResult &b)
{
    return a.cycles == b.cycles && a.numGroups == b.numGroups &&
           a.horizon == b.horizon;
}

/** Best-of-@p repeats wall time of one computeMbAvf() call. */
double
timeSweep(const PhysicalArray &array, const LifetimeStore &store,
          const ProtectionScheme &scheme, const FaultMode &mode,
          const MbAvfOptions &opt, unsigned repeats, MbAvfResult &out)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        obs::Stopwatch watch;
        MbAvfResult result =
            computeMbAvf(array, store, scheme, mode, opt);
        double s = watch.seconds();
        if (r == 0 || s < best)
            best = s;
        out = result;
    }
    return best;
}

/** Best-of-@p repeats wall time of one attributeMbAvf() call. */
double
timeAttribution(const PhysicalArray &array, const LifetimeStore &store,
                const ProtectionScheme &scheme, const FaultMode &mode,
                const MbAvfOptions &opt, unsigned repeats,
                analyze::AttributionResult &out)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        obs::Stopwatch watch;
        analyze::AttributionResult result =
            analyze::attributeMbAvf(array, store, scheme, mode, opt);
        double s = watch.seconds();
        if (r == 0 || s < best)
            best = s;
        out = std::move(result);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("micro_attribution_overhead", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned mode_size =
        static_cast<unsigned>(args.getInt("mode", 4));
    const unsigned repeats =
        static_cast<unsigned>(args.getInt("repeats", 3));
    const double max_disabled = args.getDouble("max-disabled-cost", 0.0);
    const double max_attr = args.getDouble("max-attr-cost", 0.0);

    std::cout << "attribution overhead: tagged vs tag-stripped VGPR "
                 "sweep plus attributeMbAvf, secded, mode "
              << mode_size << "x1\n\n";

    Table table({"workload", "sweep ms", "strip ms", "attr ms",
                 "disabled", "attr x"});
    RunningStats g_disabled;
    RunningStats g_attr;
    SecDedScheme secded;
    const FaultMode mode = FaultMode::mx1(mode_size);
    bool identical = true;
    bool conserved = true;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        auto array = makeRegFileArray(run.config.regs,
                                      RegInterleave::InterThread, 2);
        LifetimeStore stripped = stripTags(run.vgpr);

        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        MbAvfResult tagged, untagged;
        double sweep_s = timeSweep(*array, run.vgpr, secded, mode,
                                   opt, repeats, tagged);
        double strip_s = timeSweep(*array, stripped, secded, mode,
                                   opt, repeats, untagged);
        analyze::AttributionResult attr;
        double attr_s = timeAttribution(*array, run.vgpr, secded,
                                        mode, opt, repeats, attr);

        if (!sameResult(tagged, untagged)) {
            std::cerr << "FAIL: tagged and stripped sweeps diverge "
                         "on " << name << "\n";
            identical = false;
        }
        const std::string violation =
            analyze::checkConservation(attr, tagged);
        if (!violation.empty()) {
            std::cerr << "FAIL: conservation on " << name << ": "
                      << violation << "\n";
            conserved = false;
        }

        double disabled = strip_s > 0 ? sweep_s / strip_s : 0.0;
        double attr_x = sweep_s > 0 ? attr_s / sweep_s : 0.0;
        g_disabled.add(disabled);
        g_attr.add(attr_x);
        table.beginRow()
            .cell(name)
            .cell(sweep_s * 1e3, 2)
            .cell(strip_s * 1e3, 2)
            .cell(attr_s * 1e3, 2)
            .cell(disabled, 2)
            .cell(attr_x, 2);
    }

    table.beginRow()
        .cell("geomean")
        .cell("")
        .cell("")
        .cell("")
        .cell(g_disabled.geomean(), 2)
        .cell(g_attr.geomean(), 2);
    bench.emit(table);
    bench.meta("mode", static_cast<std::uint64_t>(mode_size));
    bench.meta("repeats", static_cast<std::uint64_t>(repeats));
    bench.meta("max_disabled_cost", max_disabled);
    bench.meta("max_attr_cost", max_attr);

    if (!identical) {
        std::cout << "\nRESULT MISMATCH between tagged and "
                     "stripped stores\n";
        return 1;
    }
    if (!conserved) {
        std::cout << "\nCONSERVATION VIOLATED\n";
        return 1;
    }
    std::cout << "\nconservation held and tag column is "
                 "result-neutral on every workload\n";
    if (max_disabled > 0 && g_disabled.geomean() > max_disabled) {
        std::cout << "FAIL: geomean disabled-cost ratio "
                  << g_disabled.geomean() << "x above the allowed "
                  << max_disabled << "x\n";
        return 1;
    }
    if (max_attr > 0 && g_attr.geomean() > max_attr) {
        std::cout << "FAIL: geomean attribution cost "
                  << g_attr.geomean() << "x above the allowed "
                  << max_attr << "x\n";
        return 1;
    }
    return 0;
}
