/**
 * @file
 * Extension: L2 AVF measurement. The paper measures AVF "in the GPU
 * L1 and L2 caches" but reports L1 figures; this harness produces the
 * L2 view: single-bit and 2x1/4x1 DUE MB-AVF of the shared 256 KB L2
 * under parity with x2 logical vs way-physical interleaving, next to
 * the L1 numbers for the same run.
 *
 * Expected shape: L2 AVF is far below L1 AVF (most L2 lines sit cold
 * or hold dead copies), and the same interleaving ordering holds.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("ext_l2_avf", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "Extension: L1 vs L2 DUE AVF (parity, x2)\n\n";

    Table table({"workload", "L1 SB", "L1 2x1 way", "L2 SB",
                 "L2 2x1 way", "L2 2x1 logical", "L2/L1 SB"});
    RunningStats ratio_stats;
    ParityScheme parity;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale, GpuConfig{}, true);
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        CacheGeometry l1_geom{run.config.l1.sets, run.config.l1.ways,
                              run.config.l1.lineBytes};
        CacheGeometry l2_geom{run.config.l2.sets, run.config.l2.ways,
                              run.config.l2.lineBytes};

        auto l1_way =
            makeCacheArray(l1_geom, CacheInterleave::WayPhysical, 2);
        auto l2_way =
            makeCacheArray(l2_geom, CacheInterleave::WayPhysical, 2);
        auto l2_log =
            makeCacheArray(l2_geom, CacheInterleave::Logical, 2);

        double l1_sb =
            computeSbAvf(*l1_way, run.l1, parity, opt).avf.due();
        double l1_mb = computeMbAvf(*l1_way, run.l1, parity,
                                    FaultMode::mx1(2), opt)
                           .avf.due();
        double l2_sb =
            computeSbAvf(*l2_way, run.l2, parity, opt).avf.due();
        double l2_mb_way = computeMbAvf(*l2_way, run.l2, parity,
                                        FaultMode::mx1(2), opt)
                               .avf.due();
        double l2_mb_log = computeMbAvf(*l2_log, run.l2, parity,
                                        FaultMode::mx1(2), opt)
                               .avf.due();

        double ratio = l1_sb > 0 ? l2_sb / l1_sb : 0.0;
        ratio_stats.add(ratio);
        table.beginRow()
            .cell(name)
            .cell(l1_sb, 4)
            .cell(l1_mb, 4)
            .cell(l2_sb, 4)
            .cell(l2_mb_way, 4)
            .cell(l2_mb_log, 4)
            .cell(ratio, 3);
    }
    bench.emit(table);

    std::cout << "\nMean L2/L1 single-bit AVF ratio: "
              << formatFixed(ratio_stats.mean(), 3)
              << ". The L2 is large relative to these working sets, "
                 "so most of its bits\nare unACE; per-bit "
                 "vulnerability is much lower than the L1's.\n";
    return 0;
}
