/**
 * @file
 * Paper Table III: per-fault-mode FIT rates used in the VGPR case
 * study — a total structure rate of 100 FIT split across 1x1..8x1
 * modes using the 22nm ratios of Ibe et al.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/fault_rates.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("table3_fault_rates", &args);
    double total = args.getDouble("total", 100.0);

    std::cout << "Table III: fault rates used for the case study "
                 "(total = " << total << ")\n\n";

    auto rates = caseStudyFaultRates(total);
    Table table({"fault mode", "fault rate (FIT)"});
    double sum = 0;
    for (unsigned m = 0; m < maxTabulatedMode; ++m) {
        table.beginRow()
            .cell(std::to_string(m + 1) + "x1")
            .cell(rates[m], 3);
        sum += rates[m];
    }
    table.beginRow().cell("total").cell(sum, 3);
    bench.emit(table);
    return 0;
}
