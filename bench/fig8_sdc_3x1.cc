/**
 * @file
 * Paper Figure 8: SDC and DUE MB-AVF for 3x1 faults in the L1 with
 * parity, x2 index-physical vs x2 way-physical interleaving, over
 * application phases of MiniFE.
 *
 * Expected shape: SDC MB-AVF well above DUE MB-AVF for both styles,
 * but a non-trivial DUE rate exists (a 3x1 over x2 interleaving
 * splits 2+1: the 1-bit region detects); designers assuming "all
 * 3x1 faults are SDC" overestimate SDC and miss the DUE component;
 * index-physical shows lower SDC than way-physical.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig8_sdc_3x1", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned windows =
        static_cast<unsigned>(args.getInt("windows", 12));
    const std::string workload = args.getString("workload", "minife");

    std::cout << "Figure 8: 3x1 SDC and DUE MB-AVF, " << workload
              << ", L1, parity, x2 interleaving\n\n";

    note("running " + workload);
    AceRun run = runAceAnalysis(workload, scale);
    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    opt.numThreads = threads;
    opt.numWindows = windows;

    auto idx = makeCacheArray(geom, CacheInterleave::IndexPhysical, 2);
    auto way = makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
    MbAvfResult r_idx = computeMbAvf(*idx, run.l1, parity,
                                     FaultMode::mx1(3), opt);
    MbAvfResult r_way = computeMbAvf(*way, run.l1, parity,
                                     FaultMode::mx1(3), opt);

    // Shielded variant: assume the partner line's parity check fires
    // before the corrupted data propagates (the Section VIII rule).
    // Under the strict cache-mode precedence the undetected 2-bit
    // region is always an adjacent same-line bit pair, so the SDC
    // MB-AVF is provably identical across x2 interleaving styles;
    // the style-dependence the paper observes appears in the DUE
    // split and, under this variant, in SDC as well (EXPERIMENTS.md).
    MbAvfOptions shield = opt;
    shield.dueShieldsSdc = true;
    shield.numWindows = 0;
    MbAvfResult s_idx = computeMbAvf(*idx, run.l1, parity,
                                     FaultMode::mx1(3), shield);
    MbAvfResult s_way = computeMbAvf(*way, run.l1, parity,
                                     FaultMode::mx1(3), shield);

    Table table({"window", "idx SDC", "idx DUE", "way SDC",
                 "way DUE"});
    for (unsigned w = 0; w < windows; ++w) {
        table.beginRow()
            .cell(std::to_string(w))
            .cell(r_idx.windows[w].sdc, 4)
            .cell(r_idx.windows[w].due(), 4)
            .cell(r_way.windows[w].sdc, 4)
            .cell(r_way.windows[w].due(), 4);
    }
    table.beginRow()
        .cell("whole-run")
        .cell(r_idx.avf.sdc, 4)
        .cell(r_idx.avf.due(), 4)
        .cell(r_way.avf.sdc, 4)
        .cell(r_way.avf.due(), 4);
    table.beginRow()
        .cell("shielded")
        .cell(s_idx.avf.sdc, 4)
        .cell(s_idx.avf.due(), 4)
        .cell(s_way.avf.sdc, 4)
        .cell(s_way.avf.due(), 4);
    bench.emit(table);

    double ratio = s_idx.avf.sdc > 0
        ? s_way.avf.sdc / s_idx.avf.sdc : 0.0;
    std::cout << "\nway/idx SDC ratio (shielded variant) = "
              << formatFixed(ratio, 2)
              << " (paper reports ~1.8x for MiniFE).\nThe "
                 "conservative 'all 3x1 faults are SDC' assumption "
                 "overestimates SDC and\nignores the DUE fraction "
                 "shown above.\n";
    return 0;
}
