/**
 * @file
 * Trial-reduction gate for the two-level stratified estimator
 * (DESIGN.md Section 16, inject/stratified.hh).
 *
 * Runs the same injected-trial budget B twice over one workload:
 * uniform sampling, and the importance-sampled stratified campaign.
 * The stratified combined SDC interval is converted into the number
 * of uniform trials that would be needed for the same width
 * (effectiveUniformTrials), and the harness reports
 *
 *   reduction = effective_trials / injected
 *
 * — how many uniform injections each stratified injection is worth.
 *
 *   micro_stratified_campaign [--workload=minife] [--scale=N]
 *       [--budget=300] [--seed=5] [--windows=8] [--classes=64]
 *       [--min-trial-reduction=R] [--threads=N]
 *
 * Exit status is nonzero when the stratified and uniform SDC
 * intervals are disjoint (the estimator would be unsound) or when
 * --min-trial-reduction=R is given and the reduction falls below R
 * (the CI performance gate).
 */

#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "inject/campaign.hh"
#include "inject/stratified.hh"
#include "obs/stopwatch.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({
        "workload", "scale", "budget", "seed", "windows", "classes",
        "min-trial-reduction", "threads", "manifest", "no-manifest",
        "help",
    });
    if (args.getBool("help")) {
        std::cout << "usage: micro_stratified_campaign"
                     " [--workload=minife] [--budget=300]\n"
                     "       [--seed=5] [--windows=8] [--classes=64]"
                     " [--min-trial-reduction=R]\n";
        return 0;
    }
    BenchReporter bench("micro_stratified_campaign", &args);
    configureThreads(args);

    const std::string workload = args.getString("workload", "minife");
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::uint64_t budget =
        static_cast<std::uint64_t>(args.getInt("budget", 300));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 5));
    const double min_reduction =
        args.getDouble("min-trial-reduction", 0.0);

    StratifyOptions options;
    options.windows =
        static_cast<unsigned>(args.getInt("windows", 8));
    options.maxClasses =
        static_cast<unsigned>(args.getInt("classes", 64));

    note("golden run of " + workload);
    Campaign campaign(workload, scale, GpuConfig{});

    note("level one: ACE partition");
    const Stratification strat =
        Stratification::build(campaign, options);
    note("partition: " +
         std::to_string(strat.strata().size()) + " strata, " +
         std::to_string(100.0 * strat.skippedWeight()) +
         "% provably Masked");

    note("level two: " + std::to_string(budget) +
         " stratified trials");
    const std::vector<Stratification::Pick> picks =
        strat.picks(0, budget);
    std::vector<TrialResult> results(picks.size());
    runTasks(picks.size(), [&](std::size_t i) {
        results[i] = campaign.runOne(strat.trialSpec(picks[i], seed));
    });
    std::vector<StratumTally> tallies(strat.strata().size());
    for (std::size_t i = 0; i < picks.size(); ++i) {
        StratumTally &tally = tallies[picks[i].stratum];
        ++tally.trials;
        ++tally.counts[static_cast<std::size_t>(results[i].outcome)];
    }
    const WilsonInterval strat_sdc =
        strat.combinedInterval(tallies, InjectOutcome::Sdc);

    note("reference: " + std::to_string(budget) +
         " uniform trials");
    CampaignTally uniform;
    for (const TrialResult &result : campaign.runTrialsDetailed(
             0, static_cast<std::size_t>(budget), seed,
             TrialKind::Register))
        uniform.add(result);
    const WilsonInterval uniform_sdc =
        uniform.rate(InjectOutcome::Sdc);

    const std::uint64_t injected = picks.size();
    const double width = strat_sdc.high - strat_sdc.low;
    const std::uint64_t effective =
        injected == 0
            ? 0
            : effectiveUniformTrials(width, strat_sdc.point);
    const double reduction =
        injected == 0 ? 0.0
                      : static_cast<double>(effective) /
                            static_cast<double>(injected);

    Table table({"sampling", "trials", "sdc", "ci_low", "ci_high",
                 "width", "n_eff"});
    table.beginRow()
        .cell(std::string("uniform"))
        .cell(std::uint64_t(budget))
        .cell(uniform_sdc.point, 6)
        .cell(uniform_sdc.low, 6)
        .cell(uniform_sdc.high, 6)
        .cell(uniform_sdc.high - uniform_sdc.low, 6)
        .cell(std::uint64_t(budget));
    table.beginRow()
        .cell(std::string("stratified"))
        .cell(injected)
        .cell(strat_sdc.point, 6)
        .cell(strat_sdc.low, 6)
        .cell(strat_sdc.high, 6)
        .cell(width, 6)
        .cell(effective);
    bench.emit(table);

    bench.meta("workload", obs::JsonValue(workload));
    bench.meta("scale", obs::JsonValue(std::uint64_t(scale)));
    bench.meta("budget", obs::JsonValue(budget));
    bench.meta("seed", obs::JsonValue(seed));
    bench.meta("skipped_weight",
               obs::JsonValue(strat.skippedWeight()));
    bench.meta("effective_trials", obs::JsonValue(effective));
    bench.meta("trial_reduction", obs::JsonValue(reduction));

    std::cout << "trial reduction: " << reduction
              << "x (stratified " << injected << " trials worth "
              << effective << " uniform)\n";

    // Soundness sanity: both estimators target the same SDC rate, so
    // their 95% intervals must overlap.
    if (strat_sdc.low > uniform_sdc.high ||
        strat_sdc.high < uniform_sdc.low) {
        std::cerr << "FAIL: stratified SDC interval ["
                  << strat_sdc.low << ", " << strat_sdc.high
                  << "] is disjoint from uniform ["
                  << uniform_sdc.low << ", " << uniform_sdc.high
                  << "]\n";
        return 1;
    }
    if (min_reduction > 0.0 && reduction < min_reduction) {
        std::cerr << "FAIL: trial reduction " << reduction
                  << "x below the --min-trial-reduction="
                  << min_reduction << " gate\n";
        return 1;
    }
    return 0;
}
