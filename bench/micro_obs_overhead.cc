/**
 * @file
 * google-benchmark microbenchmarks pinning the cost of the
 * observability layer (src/obs). The contract in DESIGN.md section
 * 11 mirrors the containment layer's: with no sink attached, every
 * obs annotation costs one relaxed atomic load and a predictable
 * branch — nothing a hot loop can measure. These benchmarks keep
 * that claim honest, same methodology as micro_trap_overhead:
 *
 *  - BM_CounterDisabled / BM_CounterEnabled bound a counter add with
 *    the metrics sink detached and attached.
 *  - BM_HistogramDisabled / BM_HistogramEnabled do the same for a
 *    bucket observe.
 *  - BM_PhaseDisabled / BM_PhaseEnabled bound an ObsPhase scope
 *    (phase table + trace slice arm/disarm).
 *  - BM_TrialObsOff / BM_TrialObsOn run the same clean campaign
 *    trial through the instrumented engine path with all sinks off
 *    and all on; the delta is the whole-stack per-trial cost.
 */

#include <benchmark/benchmark.h>

#include "inject/campaign.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"

namespace mbavf
{
namespace
{

/** Detach / attach every obs sink around one benchmark. */
void
setAllSinks(bool enabled)
{
    obs::setMetricsEnabled(enabled);
    obs::setTimingEnabled(enabled);
    obs::setTracingEnabled(enabled);
}

void
BM_CounterDisabled(benchmark::State &state)
{
    setAllSinks(false);
    obs::Counter counter =
        obs::MetricsRegistry::global().counter("bench.counter");
    for (auto _ : state)
        counter.add();
}
BENCHMARK(BM_CounterDisabled);

void
BM_CounterEnabled(benchmark::State &state)
{
    setAllSinks(false);
    obs::setMetricsEnabled(true);
    obs::Counter counter =
        obs::MetricsRegistry::global().counter("bench.counter");
    for (auto _ : state)
        counter.add();
    obs::setMetricsEnabled(false);
}
BENCHMARK(BM_CounterEnabled);

void
BM_HistogramDisabled(benchmark::State &state)
{
    setAllSinks(false);
    obs::Histogram histogram =
        obs::MetricsRegistry::global().histogram(
            "bench.histogram", {1, 8, 64, 512});
    std::uint64_t v = 0;
    for (auto _ : state)
        histogram.observe(v++ & 1023);
}
BENCHMARK(BM_HistogramDisabled);

void
BM_HistogramEnabled(benchmark::State &state)
{
    setAllSinks(false);
    obs::setMetricsEnabled(true);
    obs::Histogram histogram =
        obs::MetricsRegistry::global().histogram(
            "bench.histogram", {1, 8, 64, 512});
    std::uint64_t v = 0;
    for (auto _ : state)
        histogram.observe(v++ & 1023);
    obs::setMetricsEnabled(false);
}
BENCHMARK(BM_HistogramEnabled);

void
BM_PhaseDisabled(benchmark::State &state)
{
    setAllSinks(false);
    for (auto _ : state) {
        obs::ObsPhase phase("bench.phase");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_PhaseDisabled);

void
BM_PhaseEnabled(benchmark::State &state)
{
    setAllSinks(true);
    for (auto _ : state) {
        obs::ObsPhase phase("bench.phase");
        benchmark::ClobberMemory();
    }
    setAllSinks(false);
    obs::resetTrace();
    obs::resetPhases();
}
BENCHMARK(BM_PhaseEnabled);

Campaign &
campaign()
{
    static Campaign c("histogram", 1, GpuConfig{});
    return c;
}

void
BM_TrialObsOff(benchmark::State &state)
{
    Campaign &c = campaign();
    setAllSinks(false);
    for (auto _ : state) {
        TrialResult r = c.runOne(TrialSpec{});
        benchmark::DoNotOptimize(r.outcome);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(c.goldenInstrs()));
}
BENCHMARK(BM_TrialObsOff);

void
BM_TrialObsOn(benchmark::State &state)
{
    Campaign &c = campaign();
    setAllSinks(true);
    for (auto _ : state) {
        TrialResult r = c.runOne(TrialSpec{});
        benchmark::DoNotOptimize(r.outcome);
    }
    setAllSinks(false);
    obs::resetTrace();
    obs::resetPhases();
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(c.goldenInstrs()));
}
BENCHMARK(BM_TrialObsOn);

} // namespace
} // namespace mbavf

BENCHMARK_MAIN();
