/**
 * @file
 * Paper Figure 9: SDC MB-AVF for 5x1 through 8x1 faults with SEC-DED
 * ECC and x2 way-physical interleaving, normalized to the single-bit
 * DUE AVF.
 *
 * Expected shapes: a jump from 5x1 to 6x1 (a 5x1 over x2 splits 3+2
 * — the 2-bit region still detects; a 6x1 splits 3+3 — nothing
 * detects), then a plateau from 6x1 to 8x1 (high ACE locality within
 * a line: the same two lines are affected). Some 5x1 bars fall below
 * 1.0 because the SB-AVF denominator includes false DUE.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig9_sdc_large_modes", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::vector<unsigned> modes = {5, 6, 7, 8};

    std::cout << "Figure 9: SDC MB-AVF for large fault modes, L1, "
                 "SEC-DED, x2 way-physical\n\n";

    std::vector<std::string> header = {"workload"};
    for (unsigned m : modes)
        header.push_back(std::to_string(m) + "x1 SDC/SB");
    header.push_back("5x1 DUE/SB");
    Table table(header);

    ParityScheme parity;
    SecDedScheme secded;
    std::vector<RunningStats> geo(modes.size());

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        double sb =
            computeSbAvf(*array, run.l1, parity, opt).avf.due();

        table.beginRow().cell(name);
        double due5 = 0;
        for (std::size_t i = 0; i < modes.size(); ++i) {
            MbAvfResult mb = computeMbAvf(*array, run.l1, secded,
                                          FaultMode::mx1(modes[i]),
                                          opt);
            double ratio = sb > 0 ? mb.avf.sdc / sb : 0.0;
            geo[i].add(ratio);
            table.cell(ratio, 3);
            if (modes[i] == 5)
                due5 = sb > 0 ? mb.avf.due() / sb : 0.0;
        }
        table.cell(due5, 3);
    }
    table.beginRow().cell("geomean");
    for (std::size_t i = 0; i < modes.size(); ++i)
        table.cell(geo[i].geomean(), 3);
    table.cell("");
    bench.emit(table);

    std::cout << "\nSDC jumps from 5x1 to 6x1 (the 5x1's 2-bit "
                 "region still detects) and\nplateaus 6x1..8x1 (same "
                 "two lines affected; high intra-line ACE locality).\n";
    return 0;
}
