/**
 * @file
 * Paper Table II: ACE interference in multi-bit faults (Section
 * VII-A). Random single-bit injections into the VGPR identify SDC
 * ACE bits; multi-bit groups built from each SDC bit plus adjacent
 * bits are then injected, and groups whose outcome is not SDC count
 * as ACE interference.
 *
 * Expected result: interference is extremely rare (the paper finds
 * 2 groups out of 1730 ACE bits, ~0.1%), validating the use of ACE
 * analysis to estimate SDC MB-AVF.
 *
 * Flags: --n=<single-bit injections per workload> (default 400;
 * paper uses 5000), --scale, --workloads, --seed.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "inject/interference.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("table2_ace_interference", &args);
    configureThreads(args);
    const unsigned n =
        static_cast<unsigned>(args.getInt("n", 2000));
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 0x7ab1e2));

    std::cout << "Table II: ACE interference in multi-bit faults "
                 "(VGPR, " << n << " single-bit injections per "
                 "workload)\n\n";

    std::vector<std::string> names;
    std::string list = args.getString("workloads", "");
    if (!list.empty())
        names = splitList(list);
    else if (args.getBool("quick"))
        names = {"prefix_sum", "histogram", "dct"};
    else
        names = appSdkWorkloadNames();

    Table table({"workload", "SDC ACE bits", "2x1 interf",
                 "3x1 interf", "4x1 interf"});
    unsigned total_bits = 0, total_interf = 0, total_groups = 0;

    GpuConfig config;
    for (const std::string &name : names) {
        note("injecting " + name);
        InterferenceStats s =
            runInterferenceStudy(name, scale, config, n, seed);
        table.beginRow()
            .cell(name)
            .cell(std::uint64_t(s.sdcAceBits))
            .cell(std::uint64_t(s.interference[0]))
            .cell(std::uint64_t(s.interference[1]))
            .cell(std::uint64_t(s.interference[2]));
        total_bits += s.sdcAceBits;
        for (unsigned i = 0; i < 3; ++i) {
            total_interf += s.interference[i];
            total_groups += s.groupsTested[i];
        }
    }
    table.beginRow()
        .cell("total")
        .cell(std::uint64_t(total_bits))
        .cell("")
        .cell("")
        .cell(std::uint64_t(total_interf));
    bench.emit(table);

    double pct = total_groups
        ? 100.0 * total_interf / total_groups : 0.0;
    std::cout << "\n" << total_interf << " of " << total_groups
              << " multi-bit groups (" << formatFixed(pct, 2)
              << "%) exhibited ACE interference.\nThe paper reports "
                 "0.1%: single-bit ACE behaviour describes multi-bit "
                 "faults\nwith negligible error.\n";
    return 0;
}
