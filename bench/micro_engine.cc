/**
 * @file
 * google-benchmark microbenchmarks of the analysis kernels: interval
 * algebra, the backward lifetime builder, and the MB-AVF group
 * sweep. These bound the cost of scaling MB-AVF analysis to larger
 * structures and longer runs.
 */

#include <benchmark/benchmark.h>

#include "common/interval_set.hh"
#include "common/rng.hh"
#include "core/layout.hh"
#include "core/lifetime_builder.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"

namespace mbavf
{
namespace
{

void
BM_IntervalSetAdd(benchmark::State &state)
{
    Rng rng(42);
    std::vector<std::pair<Cycle, Cycle>> spans;
    for (int i = 0; i < 1000; ++i) {
        Cycle b = rng.below(100000);
        spans.emplace_back(b, b + rng.below(50));
    }
    for (auto _ : state) {
        IntervalSet s;
        for (auto [b, e] : spans)
            s.add(b, e);
        benchmark::DoNotOptimize(s.totalLength());
    }
}
BENCHMARK(BM_IntervalSetAdd);

void
BM_IntervalSetUnion(benchmark::State &state)
{
    Rng rng(7);
    IntervalSet a, b;
    for (int i = 0; i < 500; ++i) {
        Cycle x = rng.below(100000);
        a.add(x, x + 20);
        Cycle y = rng.below(100000);
        b.add(y, y + 20);
    }
    for (auto _ : state) {
        IntervalSet u = a.unionWith(b);
        benchmark::DoNotOptimize(u.size());
    }
}
BENCHMARK(BM_IntervalSetUnion);

void
BM_LifetimeBuilder(benchmark::State &state)
{
    WordEventLog log;
    Rng rng(11);
    Cycle t = 0;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        t += 1 + rng.below(10);
        if (rng.chance(0.3))
            log.write(t, 0xFF);
        else
            log.read(t, rng.next() & 0xFF, rng.below(1000));
    }
    LivenessResolver live = [](DefId d) {
        return d % 3 ? ~std::uint64_t(0) : 0;
    };
    for (auto _ : state) {
        WordLifetime lt = buildWordLifetime(log, t + 10, 8, live);
        benchmark::DoNotOptimize(lt.segments().size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LifetimeBuilder)->Arg(64)->Arg(512)->Arg(4096);

void
BM_MbAvfSweep(benchmark::State &state)
{
    const unsigned mode_bits = static_cast<unsigned>(state.range(0));
    CacheGeometry geom{16, 4, 64};
    auto array = makeCacheArray(geom, CacheInterleave::WayPhysical, 2);

    LifetimeStore store(8, 64);
    Rng rng(5);
    for (unsigned line = 0; line < geom.numLines(); ++line) {
        ContainerLifetime &c = store.container(line);
        for (unsigned b = 0; b < 64; ++b) {
            Cycle t = rng.below(50);
            for (int s = 0; s < 20; ++s) {
                Cycle e = t + 1 + rng.below(40);
                c.words[b].append(
                    {t, e, rng.next() & 0xFF, 0xFF});
                t = e + 1 + rng.below(20);
            }
        }
    }

    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = 2000;
    for (auto _ : state) {
        MbAvfResult r = computeMbAvf(*array, store, parity,
                                     FaultMode::mx1(mode_bits), opt);
        benchmark::DoNotOptimize(r.avf.sdc);
    }
    state.SetItemsProcessed(
        state.iterations() *
        FaultMode::mx1(mode_bits).numGroups(array->rows(),
                                            array->cols()));
}
BENCHMARK(BM_MbAvfSweep)->Arg(2)->Arg(4)->Arg(8);

} // namespace
} // namespace mbavf

BENCHMARK_MAIN();
