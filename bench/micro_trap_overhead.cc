/**
 * @file
 * google-benchmark microbenchmarks pinning the cost of the fault
 * containment layer on the simulation hot path. The contract in
 * DESIGN.md section 10 is that containment is effectively free for
 * clean trials: the watchdog adds two predictable compares per
 * instruction, and the SimTrap machinery costs nothing until a trap
 * is actually raised. These benchmarks keep that claim honest:
 *
 *  - BM_TrialWatchdogOff / BM_TrialWatchdogOn run the same clean
 *    trial with the budgets disabled and armed; the delta is the
 *    per-trial watchdog overhead.
 *  - BM_TrialCrashing runs a trial whose injected flip drives an
 *    address out of range, bounding the cold-path cost of raising,
 *    unwinding, and classifying a SimTrap.
 */

#include <benchmark/benchmark.h>

#include "inject/campaign.hh"

namespace mbavf
{
namespace
{

Campaign &
campaign()
{
    static Campaign c("histogram", 1, GpuConfig{});
    return c;
}

void
BM_TrialWatchdogOff(benchmark::State &state)
{
    Campaign &c = campaign();
    c.setWatchdogBudgets(0, 0);
    for (auto _ : state) {
        TrialResult r = c.runOne(TrialSpec{});
        benchmark::DoNotOptimize(r.outcome);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(c.goldenInstrs()));
}
BENCHMARK(BM_TrialWatchdogOff);

void
BM_TrialWatchdogOn(benchmark::State &state)
{
    Campaign &c = campaign();
    c.setWatchdogMultiplier(8.0);
    for (auto _ : state) {
        TrialResult r = c.runOne(TrialSpec{});
        benchmark::DoNotOptimize(r.outcome);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(c.goldenInstrs()));
}
BENCHMARK(BM_TrialWatchdogOn);

void
BM_TrialCrashing(benchmark::State &state)
{
    Campaign &c = campaign();
    c.setWatchdogMultiplier(8.0);
    // Flip the sign bit of the histogram kernel's address register
    // early in the run: the trial traps trap.mem.oob almost
    // immediately, so this measures the raise/unwind/classify path.
    RegInjection flip;
    flip.cu = 0;
    flip.slot = 0;
    flip.reg = 5;
    flip.lane = 0;
    flip.bitMask = 0x80000000u;
    flip.triggerInstr = 1;
    TrialSpec spec;
    spec.regFlips.push_back(flip);
    for (auto _ : state) {
        TrialResult r = c.runOne(spec);
        benchmark::DoNotOptimize(r.outcome);
    }
}
BENCHMARK(BM_TrialCrashing);

} // namespace
} // namespace mbavf

BENCHMARK_MAIN();
