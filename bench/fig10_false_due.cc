/**
 * @file
 * Paper Figure 10: true vs false DUE AVF in the L1 by fault mode,
 * parity with x4 way-physical interleaving.
 *
 * Expected shape: false DUE is a small contributor on average but
 * large for particular workloads (CoMD-like neighbour re-reads);
 * how the false fraction moves with fault-mode size depends on the
 * workload's access pattern.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig10_false_due", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::vector<unsigned> modes = {1, 2, 4};

    std::cout << "Figure 10: true vs false DUE AVF by fault mode, "
                 "L1, parity, x4 way-physical\n\n";

    std::vector<std::string> header = {"workload"};
    for (unsigned m : modes) {
        header.push_back(std::to_string(m) + "x1 true");
        header.push_back(std::to_string(m) + "x1 false");
        header.push_back(std::to_string(m) + "x1 false%");
    }
    Table table(header);

    ParityScheme parity;
    RunningStats mean_false_frac;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 4);
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        table.beginRow().cell(name);
        for (unsigned m : modes) {
            MbAvfResult r = computeMbAvf(*array, run.l1, parity,
                                         FaultMode::mx1(m), opt);
            double frac = r.avf.due() > 0
                ? 100.0 * r.avf.falseDue / r.avf.due() : 0.0;
            if (m == 1)
                mean_false_frac.add(frac);
            table.cell(r.avf.trueDue, 4)
                .cell(r.avf.falseDue, 4)
                .cell(frac, 1);
        }
    }
    bench.emit(table);

    std::cout << "\nMean single-bit false-DUE share: "
              << formatFixed(mean_false_frac.mean(), 1)
              << "% of DUE AVF. False DUE is small on average but "
                 "large for workloads that\nre-read stale data "
                 "(paper: 41% for CoMD, 29-50% for srad).\n";
    return 0;
}
