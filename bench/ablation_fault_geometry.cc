/**
 * @file
 * Ablation: arbitrary fault geometries (paper Section VI-A notes the
 * model "supports fault modes with arbitrary geometries").
 *
 * Compares equal-bit-count modes of different shapes on the L1: a
 * 4x1 wordline fault, a 2x2 cluster, a 1x4 bitline (column) fault,
 * and an L-shaped 4-bit pattern, under parity and SEC-DED with x2
 * way-physical interleaving. Shape matters: wordline faults cross
 * interleaved check words while bitline faults stack within the same
 * column of different rows (different lines entirely), so their
 * protection interactions differ sharply.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("ablation_fault_geometry", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "Ablation: fault geometry at constant size (4 bits), "
                 "L1, x2 way-physical\n\n";

    const std::vector<FaultMode> modes = {
        FaultMode::mx1(4),
        FaultMode::rect(2, 2),
        FaultMode("1x4-column",
                  {{0, 0}, {1, 0}, {2, 0}, {3, 0}}),
        FaultMode("L-shape", {{0, 0}, {0, 1}, {1, 0}, {2, 0}}),
    };

    std::vector<std::string> header = {"workload", "scheme"};
    for (const FaultMode &m : modes) {
        header.push_back(m.name() + " SDC");
        header.push_back(m.name() + " DUE");
    }
    Table table(header);

    ParityScheme parity;
    SecDedScheme secded;

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        for (const ProtectionScheme *scheme :
             {static_cast<const ProtectionScheme *>(&parity),
              static_cast<const ProtectionScheme *>(&secded)}) {
            table.beginRow().cell(name).cell(scheme->name());
            for (const FaultMode &m : modes) {
                MbAvfResult r =
                    computeMbAvf(*array, run.l1, *scheme, m, opt);
                table.cell(r.avf.sdc, 4).cell(r.avf.due(), 4);
            }
        }
    }
    bench.emit(table);

    std::cout << "\nA 4x1 wordline fault puts 2 bits in each of 2 "
                 "check words (SDC under parity);\na 1x4 column "
                 "fault puts 1 bit in each of 4 different lines "
                 "(all detected);\nclustered shapes land in "
                 "between. Geometry, not just size, drives the "
                 "outcome.\n";
    return 0;
}
