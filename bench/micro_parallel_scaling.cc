/**
 * @file
 * Parallel-scaling microbenchmark for the shared execution layer.
 *
 * Measures the two fan-out shapes the pool serves — an 8-mode
 * sweepModes() over a structure's lifetimes, and an injection
 * campaign batch (Campaign::runTrials) — at 1/2/4/N threads, and
 * checks that every thread count produces bit-identical AVF
 * fractions and per-trial outcomes.
 *
 *   micro_parallel_scaling [--workload=histogram] [--scale=N]
 *                          [--trials=256] [--modes=8] [--max-threads=N]
 *
 * Exit status is nonzero if any thread count diverges from the
 * serial reference.
 */

#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/parallel.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "obs/stopwatch.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

bool
sameSweep(const ModeSweep &a, const ModeSweep &b)
{
    if (a.results.size() != b.results.size())
        return false;
    for (std::size_t m = 0; m < a.results.size(); ++m) {
        const MbAvfResult &x = a.results[m];
        const MbAvfResult &y = b.results[m];
        if (x.avf.sdc != y.avf.sdc || x.avf.trueDue != y.avf.trueDue ||
            x.avf.falseDue != y.avf.falseDue ||
            x.windows.size() != y.windows.size()) {
            return false;
        }
        for (std::size_t w = 0; w < x.windows.size(); ++w) {
            if (x.windows[w].sdc != y.windows[w].sdc ||
                x.windows[w].trueDue != y.windows[w].trueDue ||
                x.windows[w].falseDue != y.windows[w].falseDue) {
                return false;
            }
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("micro_parallel_scaling", &args);
    const std::string workload =
        args.getString("workload", "histogram");
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned trials =
        static_cast<unsigned>(args.getInt("trials", 256));
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("modes", 8));
    unsigned max_threads =
        static_cast<unsigned>(args.getInt("max-threads", 0));
    if (max_threads == 0)
        max_threads = std::max(1u, std::thread::hardware_concurrency());

    std::vector<unsigned> counts = {1};
    for (unsigned t : {2u, 4u})
        if (t <= max_threads)
            counts.push_back(t);
    if (max_threads != 1 && max_threads != 2 && max_threads != 4)
        counts.push_back(max_threads);

    note("simulating " + workload + " for lifetimes");
    AceRun run = runAceAnalysis(workload, scale);
    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    auto array = makeCacheArray(geom, CacheInterleave::WayPhysical, 4);
    ParityScheme parity;

    note("golden run of " + workload + " for the campaign");
    Campaign campaign(workload, scale, run.config);
    const std::uint64_t seed = 12345;

    MbAvfOptions opt;
    opt.horizon = run.horizon;
    opt.numWindows = 8;

    Table table({"threads", "sweep s", "sweep x", "campaign s",
                 "campaign x", "trials/s"});
    ModeSweep ref_sweep;
    std::vector<InjectOutcome> ref_outcomes;
    double sweep1 = 0.0, camp1 = 0.0;
    bool identical = true;

    for (unsigned t : counts) {
        setParallelThreads(t);
        opt.numThreads = t == 1 ? 1 : 0;

        obs::Stopwatch watch;
        ModeSweep sweep =
            sweepModes(*array, run.l1, parity, opt, max_mode);
        double sweep_s = watch.restart();

        std::vector<InjectOutcome> outcomes =
            campaign.runTrials(trials, seed, TrialKind::Register);
        double camp_s = watch.restart();

        if (t == counts.front()) {
            ref_sweep = std::move(sweep);
            ref_outcomes = std::move(outcomes);
            sweep1 = sweep_s;
            camp1 = camp_s;
        } else {
            if (!sameSweep(ref_sweep, sweep)) {
                std::cerr << "FAIL: sweep results diverge at "
                          << t << " threads\n";
                identical = false;
            }
            if (outcomes != ref_outcomes) {
                std::cerr << "FAIL: trial outcomes diverge at "
                          << t << " threads\n";
                identical = false;
            }
        }

        table.beginRow()
            .cell(std::to_string(t))
            .cell(sweep_s, 3)
            .cell(sweep_s > 0 ? sweep1 / sweep_s : 0.0, 2)
            .cell(camp_s, 3)
            .cell(camp_s > 0 ? camp1 / camp_s : 0.0, 2)
            .cell(camp_s > 0 ? trials / camp_s : 0.0, 1);
    }

    std::cout << "parallel scaling: " << workload << ", " << max_mode
              << " modes, " << trials << " trials\n\n";
    bench.emit(table);
    std::cout << (identical
                      ? "\nresults bit-identical at every thread "
                        "count\n"
                      : "\nRESULT MISMATCH between thread counts\n");
    return identical ? 0 : 1;
}
