/**
 * @file
 * Paper Figure 11 / Section VIII: the VGPR protection case study.
 *
 * For each protection scheme (parity, SEC-DED) and interleaving
 * style (intra-thread rx2/rx4, inter-thread tx2/tx4), computes the
 * VGPR's SDC soft error rate by summing FIT_mode x SDC-MB-AVF_mode
 * over the 1x1..8x1 modes of Table III (Eq. 3) — once with measured
 * MB-AVFs and once with the designer's SB-AVF approximation (any
 * mode that defeats the protection is assumed SDC at the single-bit
 * ACE rate). Inter-thread interleaving gets the DUE-shields-SDC
 * rule: all regions of a group are read by the same 16-thread
 * operation, so a detected region converts the group's SDC to DUE.
 *
 * Expected shapes: MB-AVF analysis yields lower SDC than the SB-AVF
 * approximation; inter-thread beats intra-thread; parity tx4 beats
 * SEC-DED rx2/tx2 (the paper reports 86%/71% reductions) at 7x less
 * area.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/fault_rates.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "core/ser.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

struct Config
{
    const ProtectionScheme *scheme;
    RegInterleave style;
    unsigned interleave;
    std::string label;
};

/**
 * The designer's approximation without MB-AVF analysis: a mode that
 * defeats the protection anywhere is assumed to cause SDC at the
 * structure's single-bit ACE rate.
 */
bool
modeDefeatsProtection(const ProtectionScheme &scheme, unsigned mode,
                      unsigned interleave)
{
    // An Mx1 fault over xI interleaving splits into regions of
    // ceil(M/I) and floor(M/I) flips per register.
    unsigned hi = (mode + interleave - 1) / interleave;
    unsigned lo = mode / interleave;
    for (unsigned n : {hi, lo}) {
        if (n > 0 && scheme.action(n) == FaultAction::Undetected)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig11_vgpr_case_study", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("max-mode", 8));

    std::cout << "Figure 11: VGPR SDC SER by protection and "
                 "interleaving (total raw rate 100 FIT)\n\n";

    ParityScheme parity;
    SecDedScheme secded;
    const std::vector<Config> configs = {
        {&parity, RegInterleave::IntraThread, 2, "parity rx2"},
        {&parity, RegInterleave::IntraThread, 4, "parity rx4"},
        {&parity, RegInterleave::InterThread, 2, "parity tx2"},
        {&parity, RegInterleave::InterThread, 4, "parity tx4"},
        {&secded, RegInterleave::IntraThread, 2, "ECC rx2"},
        {&secded, RegInterleave::IntraThread, 4, "ECC rx4"},
        {&secded, RegInterleave::InterThread, 2, "ECC tx2"},
        {&secded, RegInterleave::InterThread, 4, "ECC tx4"},
    };
    auto fits = caseStudyFaultRates(100.0);

    std::vector<RunningStats> sdc_mb(configs.size());
    std::vector<RunningStats> sdc_sb(configs.size());
    std::vector<RunningStats> due_mb(configs.size());

    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        MbAvfOptions base;
        base.horizon = run.horizon;

        // Single-bit ACE fraction (unprotected) for the designer's
        // approximation.
        NoProtection none;
        auto plain =
            makeRegFileArray(run.config.regs,
                             RegInterleave::IntraThread, 1);
        double sb_ace =
            computeSbAvf(*plain, run.vgpr, none, base).avf.sdc;

        for (std::size_t c = 0; c < configs.size(); ++c) {
            const Config &cfg = configs[c];
            auto array = makeRegFileArray(run.config.regs, cfg.style,
                                          cfg.interleave);
            MbAvfOptions opt = base;
            opt.numThreads = threads;
            opt.dueShieldsSdc =
                cfg.style == RegInterleave::InterThread;

            StructureSer measured{};
            double approx_sdc = 0.0;
            for (unsigned m = 1; m <= max_mode; ++m) {
                MbAvfResult r =
                    computeMbAvf(*array, run.vgpr, *cfg.scheme,
                                 FaultMode::mx1(m), opt);
                measured.sdc += fits[m - 1] * r.avf.sdc;
                measured.trueDue += fits[m - 1] * r.avf.trueDue;
                measured.falseDue += fits[m - 1] * r.avf.falseDue;
                if (modeDefeatsProtection(*cfg.scheme, m,
                                          cfg.interleave)) {
                    approx_sdc += fits[m - 1] * sb_ace;
                }
            }
            sdc_mb[c].add(measured.sdc);
            sdc_sb[c].add(approx_sdc);
            due_mb[c].add(measured.due());
        }
    }

    Table table({"config", "SDC SER (MB-AVF)", "SDC SER (SB approx)",
                 "DUE SER (MB-AVF)", "area overhead"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        table.beginRow()
            .cell(configs[c].label)
            .cell(sdc_mb[c].mean(), 4)
            .cell(sdc_sb[c].mean(), 4)
            .cell(due_mb[c].mean(), 4)
            .cell(formatFixed(
                      100.0 * configs[c].scheme->areaOverhead(32), 1) +
                  "%");
    }
    bench.emit(table);

    double p_tx4 = sdc_mb[3].mean();
    double e_rx2 = sdc_mb[4].mean();
    double e_tx2 = sdc_mb[6].mean();
    auto red = [](double base, double v) {
        return base > 0 ? 100.0 * (base - v) / base : 0.0;
    };
    std::cout << "\nparity tx4 vs ECC rx2: "
              << formatFixed(red(e_rx2, p_tx4), 1)
              << "% lower SDC (paper: 86%)\nparity tx4 vs ECC tx2: "
              << formatFixed(red(e_tx2, p_tx4), 1)
              << "% lower SDC (paper: 71%)\nat 3.1% area vs 21.9% "
                 "for ECC.\n";
    return 0;
}
