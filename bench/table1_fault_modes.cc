/**
 * @file
 * Paper Table I: percent ratio of multi-bit faults to total faults
 * by technology node (Ibe et al. accelerated-testing data; see
 * fault_rates.cc for the reconstruction notes).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/fault_rates.hh"

using namespace mbavf;

int
main()
{
    BenchReporter bench("table1_fault_modes");
    std::cout << "Table I: percent of faults by multi-bit width and "
                 "design rule\n\n";

    Table table({"node(nm)", "1x1", "2x1", "3x1", "4x1", "5x1", "6x1",
                 "7x1", "8x1", "multi-bit total"});
    for (const NodeFaultRatios &node : ibeFaultRatios()) {
        table.beginRow().cell(std::to_string(node.designRuleNm));
        for (unsigned m = 0; m < maxTabulatedMode; ++m)
            table.cell(node.percent[m], 3);
        table.cell(node.multiBitPercent(), 2);
    }
    bench.emit(table);

    std::cout << "\nMulti-bit faults rise from ~0.5% of faults at "
                 "180nm to 3.9% at 22nm,\nwith both rate and width "
                 "increasing at smaller feature sizes.\n";
    return 0;
}
