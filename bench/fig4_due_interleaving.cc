/**
 * @file
 * Paper Figure 4: DUE MB-AVF of a 2x1 fault in the L1 cache with
 * parity, normalized to the single-bit AVF, for x2 logical,
 * way-physical, and index-physical interleaving.
 *
 * Expected shape: every ratio lies in [1, 2]; logical interleaving
 * tracks the 1.0 floor (highest ACE locality); physical styles vary
 * by workload, with way-physical generally worst.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig4_due_interleaving", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "Figure 4: 2x1 DUE MB-AVF / SB-AVF in the L1, "
                 "parity, x2 interleaving\n\n";

    Table table({"workload", "SB-AVF(DUE)", "logical", "way-phys",
                 "index-phys"});
    RunningStats g_log, g_way, g_idx;

    ParityScheme parity;
    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        auto ratio = [&](CacheInterleave style) {
            auto array = makeCacheArray(geom, style, 2);
            double sb =
                computeSbAvf(*array, run.l1, parity, opt).avf.due();
            double mb = computeMbAvf(*array, run.l1, parity,
                                     FaultMode::mx1(2), opt)
                            .avf.due();
            return sb > 0 ? mb / sb : 0.0;
        };

        auto base = makeCacheArray(geom, CacheInterleave::Logical, 2);
        double sb =
            computeSbAvf(*base, run.l1, parity, opt).avf.due();
        double r_log = ratio(CacheInterleave::Logical);
        double r_way = ratio(CacheInterleave::WayPhysical);
        double r_idx = ratio(CacheInterleave::IndexPhysical);
        g_log.add(r_log);
        g_way.add(r_way);
        g_idx.add(r_idx);

        table.beginRow()
            .cell(name)
            .cell(sb, 4)
            .cell(r_log, 3)
            .cell(r_way, 3)
            .cell(r_idx, 3);
    }
    table.beginRow()
        .cell("geomean")
        .cell("")
        .cell(g_log.geomean(), 3)
        .cell(g_way.geomean(), 3)
        .cell(g_idx.geomean(), 3);
    bench.emit(table);

    std::cout << "\nAll ratios lie within the first-principles [1, 2] "
                 "band; logical interleaving\n(same-line check words, "
                 "high ACE locality) stays lowest.\n";
    return 0;
}
