/**
 * @file
 * Paper Figure 5: DUE AVF over time for MiniFE in the L1 cache.
 *  (a) SB-AVF vs 2x1 MB-AVF with x2 index-physical interleaving;
 *  (b) 2x1 MB-AVF under x2 logical / way-physical / index-physical.
 *
 * Expected shape: both AVFs track the benchmark's phases; the
 * MB-AVF/SB-AVF gap widens in low-AVF phases; the interleaving
 * styles separate in some phases and coincide in others.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("fig5_minife_timeseries", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const unsigned windows =
        static_cast<unsigned>(args.getInt("windows", 16));
    const std::string workload = args.getString("workload", "minife");

    std::cout << "Figure 5: DUE AVF over time, " << workload
              << ", L1 cache, parity\n\n";

    note("running " + workload);
    AceRun run = runAceAnalysis(workload, scale);
    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    opt.numThreads = threads;
    opt.numWindows = windows;

    auto windowed = [&](CacheInterleave style, unsigned mode_bits) {
        auto array = makeCacheArray(geom, style, 2);
        return computeMbAvf(*array, run.l1, parity,
                            FaultMode::mx1(mode_bits), opt);
    };

    MbAvfResult sb = windowed(CacheInterleave::IndexPhysical, 1);
    MbAvfResult mb_idx = windowed(CacheInterleave::IndexPhysical, 2);
    MbAvfResult mb_log = windowed(CacheInterleave::Logical, 2);
    MbAvfResult mb_way = windowed(CacheInterleave::WayPhysical, 2);

    Table table({"window", "SB-AVF", "2x1 idx-phys", "2x1 logical",
                 "2x1 way-phys", "MB/SB (idx)"});
    for (unsigned w = 0; w < windows; ++w) {
        double s = sb.windows[w].due();
        double mi = mb_idx.windows[w].due();
        table.beginRow()
            .cell(std::to_string(w))
            .cell(s, 4)
            .cell(mi, 4)
            .cell(mb_log.windows[w].due(), 4)
            .cell(mb_way.windows[w].due(), 4)
            .cell(s > 0 ? mi / s : 0.0, 3);
    }
    table.beginRow()
        .cell("whole-run")
        .cell(sb.avf.due(), 4)
        .cell(mb_idx.avf.due(), 4)
        .cell(mb_log.avf.due(), 4)
        .cell(mb_way.avf.due(), 4)
        .cell(sb.avf.due() > 0 ? mb_idx.avf.due() / sb.avf.due() : 0.0,
              3);
    bench.emit(table);

    std::cout << "\nThe MB/SB ratio changes across application phases "
                 "(paper Fig. 5a), and the\ninterleaving styles "
                 "separate only in some phases (paper Fig. 5b).\n";
    return 0;
}
