/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses.
 *
 * Every harness prints the paper-style rows/series as an aligned
 * text table followed by a CSV block ("== csv ==") for scripting.
 * Common flags: --workloads=a,b,c  --scale=N  --quick  --threads=N.
 */

#ifndef MBAVF_BENCH_BENCH_UTIL_HH
#define MBAVF_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Split a comma-separated list. */
inline std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Workload selection from --workloads, default = all. */
inline std::vector<std::string>
selectedWorkloads(const Args &args)
{
    std::string list = args.getString("workloads", "");
    if (!list.empty())
        return splitList(list);
    if (args.getBool("quick"))
        return {"minife", "comd", "srad", "histogram"};
    return workloadNames();
}

/**
 * Apply --threads=N (0 = all hardware threads) to the shared pool
 * and return the value for MbAvfOptions::numThreads. Unset keeps the
 * pool at its MBAVF_THREADS / hardware default and returns 0 (use
 * the pool); results are bit-identical at any setting.
 */
inline unsigned
configureThreads(const Args &args)
{
    unsigned n = static_cast<unsigned>(args.getInt("threads", 0));
    if (args.has("threads"))
        setParallelThreads(n);
    return n;
}

/** Print the table as text plus a CSV block. */
inline void
emit(const Table &table)
{
    table.printText(std::cout);
    std::cout << "\n== csv ==\n";
    table.printCsv(std::cout);
    std::cout.flush();
}

/** Progress note to stderr (keeps stdout machine-readable). */
inline void
note(const std::string &message)
{
    std::cerr << "[bench] " << message << "\n";
}

} // namespace mbavf

#endif // MBAVF_BENCH_BENCH_UTIL_HH
