/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses.
 *
 * Every harness prints the paper-style rows/series as an aligned
 * text table followed by a CSV block ("== csv ==") for scripting,
 * and — via BenchReporter — writes the same tables plus phase
 * timings, metrics, and build provenance as a BENCH_<name>.json
 * manifest for mbavf_report to diff and merge.
 * Common flags: --workloads=a,b,c  --scale=N  --quick  --threads=N
 * --manifest=FILE (override the path)  --no-manifest.
 */

#ifndef MBAVF_BENCH_BENCH_UTIL_HH
#define MBAVF_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "obs/adapters.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Split a comma-separated list. */
inline std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Workload selection from --workloads, default = all. */
inline std::vector<std::string>
selectedWorkloads(const Args &args)
{
    std::string list = args.getString("workloads", "");
    if (!list.empty())
        return splitList(list);
    if (args.getBool("quick"))
        return {"minife", "comd", "srad", "histogram"};
    return workloadNames();
}

/**
 * Apply --threads=N (0 = all hardware threads) to the shared pool
 * and return the value for MbAvfOptions::numThreads. Unset keeps the
 * pool at its MBAVF_THREADS / hardware default and returns 0 (use
 * the pool); results are bit-identical at any setting.
 */
inline unsigned
configureThreads(const Args &args)
{
    unsigned n = static_cast<unsigned>(args.getInt("threads", 0));
    if (args.has("threads"))
        setParallelThreads(n);
    return n;
}

/** Progress note to stderr (keeps stdout machine-readable). */
inline void
note(const std::string &message)
{
    std::cerr << "[bench] " << message << "\n";
}

/**
 * Per-harness result sink: prints each table as text plus a CSV
 * block (exactly the old emit() output) and collects everything into
 * a BENCH_<name>.json manifest written when the reporter goes out of
 * scope. Constructing the reporter turns the obs metrics and phase
 * sinks on, so the timing/metric sections are populated for free.
 *
 * --manifest=FILE overrides the output path; --no-manifest skips the
 * file (and leaves the obs sinks off, keeping the harness at the
 * disabled-instrumentation cost for overhead studies).
 */
class BenchReporter
{
  public:
    explicit BenchReporter(const std::string &name,
                           const Args *args = nullptr)
        : manifest_("bench/" + name), tables_(obs::JsonValue::array())
    {
        path_ = "BENCH_" + name + ".json";
        if (args) {
            path_ = args->getString("manifest", path_);
            if (args->getBool("no-manifest"))
                path_.clear();
        }
        if (!path_.empty()) {
            obs::setMetricsEnabled(true);
            obs::setTimingEnabled(true);
        }
    }

    ~BenchReporter() { finish(); }

    BenchReporter(const BenchReporter &) = delete;
    BenchReporter &operator=(const BenchReporter &) = delete;

    /** Print @p table (text + CSV) and record it in the manifest. */
    void
    emit(const Table &table)
    {
        table.printText(std::cout);
        std::cout << "\n== csv ==\n";
        table.printCsv(std::cout);
        std::cout.flush();
        tables_.push(obs::tableJson(table));
    }

    /** Add a "run" section entry (workload list, scale, ...). */
    void
    meta(const std::string &key, obs::JsonValue value)
    {
        run_.set(key, std::move(value));
    }

    /** Write the manifest now (idempotent; the dtor calls this). */
    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        if (path_.empty())
            return;
        if (run_.size())
            manifest_.set("run", std::move(run_));
        manifest_.set("tables", std::move(tables_));
        manifest_.captureObservations();
        manifest_.setEnv();
        std::string error;
        if (!manifest_.write(path_, error))
            warn("bench manifest not written: ", error);
        else
            note("manifest: " + path_);
    }

  private:
    obs::Manifest manifest_;
    obs::JsonValue run_ = obs::JsonValue::object();
    obs::JsonValue tables_;
    std::string path_;
    bool finished_ = false;
};

} // namespace mbavf

#endif // MBAVF_BENCH_BENCH_UTIL_HH
