/**
 * @file
 * Ablation: quantifying ACE locality (paper Section VI-B).
 *
 * The paper explains interleaving results through "ACE locality" —
 * the tendency of ACE bits to cluster. This harness measures it
 * directly: the conditional probability that a bit's neighbour is
 * ACE in the same cycle, for three neighbour definitions (next bit
 * in the same line, same position in another way of the set, same
 * position in the adjacent set), and shows it predicts the 2x1
 * MB-AVF ordering of the interleaving styles: higher locality =>
 * lower MB-AVF.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

/**
 * P(partner ACE | bit ACE) for pairs defined by a layout's 2x1
 * groups: computed as 2*P(both) / (P(a)+P(b)) aggregated over the
 * array, derived from engine results:
 *   union = P(a or b) = MB-AVF of the 2x1 group (no protection)
 *   sum   = P(a) + P(b) = 2 * SB-AVF
 *   both  = sum - union; locality = both / sum.
 */
double
locality(const PhysicalArray &array, const LifetimeStore &life,
         Cycle horizon)
{
    NoProtection none;
    MbAvfOptions opt;
    opt.horizon = horizon;
    double sb = computeSbAvf(array, life, none, opt).avf.sdc;
    double mb = computeMbAvf(array, life, none, FaultMode::mx1(2), opt)
                    .avf.sdc;
    double sum = 2 * sb;
    double both = sum - mb;
    return sum > 0 ? both / sum : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    BenchReporter bench("ablation_ace_locality", &args);
    const unsigned threads = configureThreads(args);
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "Ablation: ACE locality vs 2x1 MB-AVF (L1, "
                 "parity)\n\n";

    Table table({"workload", "loc same-line", "loc cross-way",
                 "loc cross-set", "mb/sb logical", "mb/sb way",
                 "mb/sb index"});
    RunningStats corr_ok;

    ParityScheme parity;
    for (const std::string &name : selectedWorkloads(args)) {
        note("running " + name);
        AceRun run = runAceAnalysis(name, scale);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        opt.numThreads = threads;

        auto log = makeCacheArray(geom, CacheInterleave::Logical, 2);
        auto way =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
        auto idx =
            makeCacheArray(geom, CacheInterleave::IndexPhysical, 2);

        double loc_line = locality(*log, run.l1, run.horizon);
        double loc_way = locality(*way, run.l1, run.horizon);
        double loc_idx = locality(*idx, run.l1, run.horizon);

        auto ratio = [&](const PhysicalArray &a) {
            double sb = computeSbAvf(a, run.l1, parity, opt).avf.due();
            double mb = computeMbAvf(a, run.l1, parity,
                                     FaultMode::mx1(2), opt)
                            .avf.due();
            return sb > 0 ? mb / sb : 0.0;
        };
        double r_log = ratio(*log);
        double r_way = ratio(*way);
        double r_idx = ratio(*idx);

        // The claimed relationship: locality ordering is the inverse
        // of the MB-AVF ordering.
        bool consistent = (loc_line >= loc_way) == (r_log <= r_way) &&
                          (loc_line >= loc_idx) == (r_log <= r_idx);
        corr_ok.add(consistent ? 1.0 : 0.0);

        table.beginRow()
            .cell(name)
            .cell(loc_line, 3)
            .cell(loc_way, 3)
            .cell(loc_idx, 3)
            .cell(r_log, 3)
            .cell(r_way, 3)
            .cell(r_idx, 3);
    }
    bench.emit(table);

    std::cout << "\nHigher ACE locality => lower MB-AVF held for "
              << formatFixed(100 * corr_ok.mean(), 0)
              << "% of workloads.\nSame-line bits are written/read "
                 "together, so logical interleaving pairs bits\nwith "
                 "correlated ACEness — the paper's design guidance.\n";
    return 0;
}
