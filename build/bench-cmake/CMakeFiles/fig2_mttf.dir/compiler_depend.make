# Empty compiler generated dependencies file for fig2_mttf.
# This may be replaced when dependencies are built.
