file(REMOVE_RECURSE
  "../bench/fig2_mttf"
  "../bench/fig2_mttf.pdb"
  "CMakeFiles/fig2_mttf.dir/fig2_mttf.cc.o"
  "CMakeFiles/fig2_mttf.dir/fig2_mttf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
