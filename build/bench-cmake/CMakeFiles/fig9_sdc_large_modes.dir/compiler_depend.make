# Empty compiler generated dependencies file for fig9_sdc_large_modes.
# This may be replaced when dependencies are built.
