file(REMOVE_RECURSE
  "../bench/fig9_sdc_large_modes"
  "../bench/fig9_sdc_large_modes.pdb"
  "CMakeFiles/fig9_sdc_large_modes.dir/fig9_sdc_large_modes.cc.o"
  "CMakeFiles/fig9_sdc_large_modes.dir/fig9_sdc_large_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sdc_large_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
