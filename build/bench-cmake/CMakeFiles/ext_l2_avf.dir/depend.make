# Empty dependencies file for ext_l2_avf.
# This may be replaced when dependencies are built.
