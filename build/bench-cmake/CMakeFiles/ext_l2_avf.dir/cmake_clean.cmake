file(REMOVE_RECURSE
  "../bench/ext_l2_avf"
  "../bench/ext_l2_avf.pdb"
  "CMakeFiles/ext_l2_avf.dir/ext_l2_avf.cc.o"
  "CMakeFiles/ext_l2_avf.dir/ext_l2_avf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_l2_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
