file(REMOVE_RECURSE
  "../bench/table1_fault_modes"
  "../bench/table1_fault_modes.pdb"
  "CMakeFiles/table1_fault_modes.dir/table1_fault_modes.cc.o"
  "CMakeFiles/table1_fault_modes.dir/table1_fault_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fault_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
