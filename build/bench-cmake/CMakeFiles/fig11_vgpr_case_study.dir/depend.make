# Empty dependencies file for fig11_vgpr_case_study.
# This may be replaced when dependencies are built.
