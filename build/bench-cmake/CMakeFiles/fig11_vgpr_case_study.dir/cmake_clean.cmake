file(REMOVE_RECURSE
  "../bench/fig11_vgpr_case_study"
  "../bench/fig11_vgpr_case_study.pdb"
  "CMakeFiles/fig11_vgpr_case_study.dir/fig11_vgpr_case_study.cc.o"
  "CMakeFiles/fig11_vgpr_case_study.dir/fig11_vgpr_case_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vgpr_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
