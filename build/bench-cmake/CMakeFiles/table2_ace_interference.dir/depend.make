# Empty dependencies file for table2_ace_interference.
# This may be replaced when dependencies are built.
