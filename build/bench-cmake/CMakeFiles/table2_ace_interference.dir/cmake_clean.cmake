file(REMOVE_RECURSE
  "../bench/table2_ace_interference"
  "../bench/table2_ace_interference.pdb"
  "CMakeFiles/table2_ace_interference.dir/table2_ace_interference.cc.o"
  "CMakeFiles/table2_ace_interference.dir/table2_ace_interference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ace_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
