file(REMOVE_RECURSE
  "../bench/fig5_minife_timeseries"
  "../bench/fig5_minife_timeseries.pdb"
  "CMakeFiles/fig5_minife_timeseries.dir/fig5_minife_timeseries.cc.o"
  "CMakeFiles/fig5_minife_timeseries.dir/fig5_minife_timeseries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_minife_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
