# Empty dependencies file for fig5_minife_timeseries.
# This may be replaced when dependencies are built.
