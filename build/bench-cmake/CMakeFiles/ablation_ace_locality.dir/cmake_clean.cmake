file(REMOVE_RECURSE
  "../bench/ablation_ace_locality"
  "../bench/ablation_ace_locality.pdb"
  "CMakeFiles/ablation_ace_locality.dir/ablation_ace_locality.cc.o"
  "CMakeFiles/ablation_ace_locality.dir/ablation_ace_locality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ace_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
