# Empty dependencies file for ablation_ace_locality.
# This may be replaced when dependencies are built.
