# Empty dependencies file for fig10_false_due.
# This may be replaced when dependencies are built.
