file(REMOVE_RECURSE
  "../bench/fig10_false_due"
  "../bench/fig10_false_due.pdb"
  "CMakeFiles/fig10_false_due.dir/fig10_false_due.cc.o"
  "CMakeFiles/fig10_false_due.dir/fig10_false_due.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_false_due.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
