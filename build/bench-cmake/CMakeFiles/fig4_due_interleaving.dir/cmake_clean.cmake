file(REMOVE_RECURSE
  "../bench/fig4_due_interleaving"
  "../bench/fig4_due_interleaving.pdb"
  "CMakeFiles/fig4_due_interleaving.dir/fig4_due_interleaving.cc.o"
  "CMakeFiles/fig4_due_interleaving.dir/fig4_due_interleaving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_due_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
