# Empty dependencies file for fig4_due_interleaving.
# This may be replaced when dependencies are built.
