# Empty dependencies file for fig6_fault_modes.
# This may be replaced when dependencies are built.
