file(REMOVE_RECURSE
  "../bench/fig6_fault_modes"
  "../bench/fig6_fault_modes.pdb"
  "CMakeFiles/fig6_fault_modes.dir/fig6_fault_modes.cc.o"
  "CMakeFiles/fig6_fault_modes.dir/fig6_fault_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fault_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
