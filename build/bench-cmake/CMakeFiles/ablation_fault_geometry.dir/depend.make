# Empty dependencies file for ablation_fault_geometry.
# This may be replaced when dependencies are built.
