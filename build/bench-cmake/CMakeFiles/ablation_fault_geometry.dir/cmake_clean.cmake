file(REMOVE_RECURSE
  "../bench/ablation_fault_geometry"
  "../bench/ablation_fault_geometry.pdb"
  "CMakeFiles/ablation_fault_geometry.dir/ablation_fault_geometry.cc.o"
  "CMakeFiles/ablation_fault_geometry.dir/ablation_fault_geometry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
