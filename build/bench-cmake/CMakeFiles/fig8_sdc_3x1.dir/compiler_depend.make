# Empty compiler generated dependencies file for fig8_sdc_3x1.
# This may be replaced when dependencies are built.
