
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_sdc_3x1.cc" "bench-cmake/CMakeFiles/fig8_sdc_3x1.dir/fig8_sdc_3x1.cc.o" "gcc" "bench-cmake/CMakeFiles/fig8_sdc_3x1.dir/fig8_sdc_3x1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbavf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbavf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mbavf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mbavf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mbavf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/mbavf_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/mttf/CMakeFiles/mbavf_mttf.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mbavf_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
