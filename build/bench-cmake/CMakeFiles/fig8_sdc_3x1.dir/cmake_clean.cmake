file(REMOVE_RECURSE
  "../bench/fig8_sdc_3x1"
  "../bench/fig8_sdc_3x1.pdb"
  "CMakeFiles/fig8_sdc_3x1.dir/fig8_sdc_3x1.cc.o"
  "CMakeFiles/fig8_sdc_3x1.dir/fig8_sdc_3x1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sdc_3x1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
