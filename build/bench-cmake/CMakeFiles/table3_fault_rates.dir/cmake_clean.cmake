file(REMOVE_RECURSE
  "../bench/table3_fault_rates"
  "../bench/table3_fault_rates.pdb"
  "CMakeFiles/table3_fault_rates.dir/table3_fault_rates.cc.o"
  "CMakeFiles/table3_fault_rates.dir/table3_fault_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fault_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
