# Empty compiler generated dependencies file for table3_fault_rates.
# This may be replaced when dependencies are built.
