# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-cmake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_fault_modes")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3 "/root/repo/build/bench/table3_fault_rates")
set_tests_properties(bench_smoke_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2 "/root/repo/build/bench/fig2_mttf")
set_tests_properties(bench_smoke_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4 "/root/repo/build/bench/fig4_due_interleaving" "--workloads=histogram")
set_tests_properties(bench_smoke_fig4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/fig5_minife_timeseries" "--windows=4")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6 "/root/repo/build/bench/fig6_fault_modes" "--workloads=histogram")
set_tests_properties(bench_smoke_fig6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/fig8_sdc_3x1" "--windows=4")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/fig9_sdc_large_modes" "--workloads=histogram")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10 "/root/repo/build/bench/fig10_false_due" "--workloads=histogram")
set_tests_properties(bench_smoke_fig10 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11 "/root/repo/build/bench/fig11_vgpr_case_study" "--workloads=histogram")
set_tests_properties(bench_smoke_fig11 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/table2_ace_interference" "--workloads=histogram" "--n=30")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_locality "/root/repo/build/bench/ablation_ace_locality" "--workloads=histogram")
set_tests_properties(bench_smoke_locality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;49;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_geometry "/root/repo/build/bench/ablation_fault_geometry" "--workloads=histogram")
set_tests_properties(bench_smoke_geometry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_l2 "/root/repo/build/bench/ext_l2_avf" "--workloads=histogram")
set_tests_properties(bench_smoke_l2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
