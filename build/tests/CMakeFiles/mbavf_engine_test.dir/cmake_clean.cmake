file(REMOVE_RECURSE
  "CMakeFiles/mbavf_engine_test.dir/core/mbavf_engine_test.cc.o"
  "CMakeFiles/mbavf_engine_test.dir/core/mbavf_engine_test.cc.o.d"
  "mbavf_engine_test"
  "mbavf_engine_test.pdb"
  "mbavf_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
