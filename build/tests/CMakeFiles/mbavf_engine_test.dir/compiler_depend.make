# Empty compiler generated dependencies file for mbavf_engine_test.
# This may be replaced when dependencies are built.
