# Empty dependencies file for protection_test.
# This may be replaced when dependencies are built.
