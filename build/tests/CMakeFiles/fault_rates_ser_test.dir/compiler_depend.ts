# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fault_rates_ser_test.
