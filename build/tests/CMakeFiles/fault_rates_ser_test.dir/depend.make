# Empty dependencies file for fault_rates_ser_test.
# This may be replaced when dependencies are built.
