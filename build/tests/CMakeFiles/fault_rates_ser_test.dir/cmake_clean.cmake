file(REMOVE_RECURSE
  "CMakeFiles/fault_rates_ser_test.dir/core/fault_rates_ser_test.cc.o"
  "CMakeFiles/fault_rates_ser_test.dir/core/fault_rates_ser_test.cc.o.d"
  "fault_rates_ser_test"
  "fault_rates_ser_test.pdb"
  "fault_rates_ser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_rates_ser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
