file(REMOVE_RECURSE
  "CMakeFiles/l2_probe_test.dir/mem/l2_probe_test.cc.o"
  "CMakeFiles/l2_probe_test.dir/mem/l2_probe_test.cc.o.d"
  "l2_probe_test"
  "l2_probe_test.pdb"
  "l2_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
