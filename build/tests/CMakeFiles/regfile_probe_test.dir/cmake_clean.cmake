file(REMOVE_RECURSE
  "CMakeFiles/regfile_probe_test.dir/gpu/regfile_probe_test.cc.o"
  "CMakeFiles/regfile_probe_test.dir/gpu/regfile_probe_test.cc.o.d"
  "regfile_probe_test"
  "regfile_probe_test.pdb"
  "regfile_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regfile_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
