# Empty dependencies file for regfile_probe_test.
# This may be replaced when dependencies are built.
