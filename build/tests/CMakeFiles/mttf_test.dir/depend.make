# Empty dependencies file for mttf_test.
# This may be replaced when dependencies are built.
