file(REMOVE_RECURSE
  "CMakeFiles/mttf_test.dir/mttf/mttf_test.cc.o"
  "CMakeFiles/mttf_test.dir/mttf/mttf_test.cc.o.d"
  "mttf_test"
  "mttf_test.pdb"
  "mttf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mttf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
