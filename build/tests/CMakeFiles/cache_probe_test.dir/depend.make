# Empty dependencies file for cache_probe_test.
# This may be replaced when dependencies are built.
