file(REMOVE_RECURSE
  "CMakeFiles/cache_probe_test.dir/mem/cache_probe_test.cc.o"
  "CMakeFiles/cache_probe_test.dir/mem/cache_probe_test.cc.o.d"
  "cache_probe_test"
  "cache_probe_test.pdb"
  "cache_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
