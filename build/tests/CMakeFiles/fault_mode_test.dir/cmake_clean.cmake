file(REMOVE_RECURSE
  "CMakeFiles/fault_mode_test.dir/core/fault_mode_test.cc.o"
  "CMakeFiles/fault_mode_test.dir/core/fault_mode_test.cc.o.d"
  "fault_mode_test"
  "fault_mode_test.pdb"
  "fault_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
