file(REMOVE_RECURSE
  "CMakeFiles/lifetime_io_test.dir/core/lifetime_io_test.cc.o"
  "CMakeFiles/lifetime_io_test.dir/core/lifetime_io_test.cc.o.d"
  "lifetime_io_test"
  "lifetime_io_test.pdb"
  "lifetime_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
