# Empty dependencies file for lifetime_io_test.
# This may be replaced when dependencies are built.
