# Empty compiler generated dependencies file for workload_ace_test.
# This may be replaced when dependencies are built.
