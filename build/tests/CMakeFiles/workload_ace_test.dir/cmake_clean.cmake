file(REMOVE_RECURSE
  "CMakeFiles/workload_ace_test.dir/workloads/workload_ace_test.cc.o"
  "CMakeFiles/workload_ace_test.dir/workloads/workload_ace_test.cc.o.d"
  "workload_ace_test"
  "workload_ace_test.pdb"
  "workload_ace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_ace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
