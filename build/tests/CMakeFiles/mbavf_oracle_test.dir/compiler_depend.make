# Empty compiler generated dependencies file for mbavf_oracle_test.
# This may be replaced when dependencies are built.
