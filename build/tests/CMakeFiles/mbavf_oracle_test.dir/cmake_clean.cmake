file(REMOVE_RECURSE
  "CMakeFiles/mbavf_oracle_test.dir/core/mbavf_oracle_test.cc.o"
  "CMakeFiles/mbavf_oracle_test.dir/core/mbavf_oracle_test.cc.o.d"
  "mbavf_oracle_test"
  "mbavf_oracle_test.pdb"
  "mbavf_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
