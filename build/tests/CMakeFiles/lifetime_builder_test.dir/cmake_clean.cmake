file(REMOVE_RECURSE
  "CMakeFiles/lifetime_builder_test.dir/core/lifetime_builder_test.cc.o"
  "CMakeFiles/lifetime_builder_test.dir/core/lifetime_builder_test.cc.o.d"
  "lifetime_builder_test"
  "lifetime_builder_test.pdb"
  "lifetime_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
