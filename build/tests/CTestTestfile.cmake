# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interval_set_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fault_mode_test[1]_include.cmake")
include("/root/repo/build/tests/protection_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/lifetime_builder_test[1]_include.cmake")
include("/root/repo/build/tests/mbavf_engine_test[1]_include.cmake")
include("/root/repo/build/tests/fault_rates_ser_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/cache_probe_test[1]_include.cmake")
include("/root/repo/build/tests/wave_test[1]_include.cmake")
include("/root/repo/build/tests/regfile_probe_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
include("/root/repo/build/tests/mttf_test[1]_include.cmake")
include("/root/repo/build/tests/mbavf_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/lifetime_io_test[1]_include.cmake")
include("/root/repo/build/tests/l2_probe_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/workload_ace_test[1]_include.cmake")
include("/root/repo/build/tests/masking_test[1]_include.cmake")
