# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--workload=histogram")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protection_explorer "/root/repo/build/examples/protection_explorer" "--workload=histogram")
set_tests_properties(example_protection_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_injection_study "/root/repo/build/examples/injection_study" "--n=80" "--workload=dct")
set_tests_properties(example_injection_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_chip_ser "/root/repo/build/examples/chip_ser" "--workload=histogram")
set_tests_properties(example_chip_ser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
