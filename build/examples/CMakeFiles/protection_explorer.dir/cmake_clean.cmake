file(REMOVE_RECURSE
  "CMakeFiles/protection_explorer.dir/protection_explorer.cpp.o"
  "CMakeFiles/protection_explorer.dir/protection_explorer.cpp.o.d"
  "protection_explorer"
  "protection_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
