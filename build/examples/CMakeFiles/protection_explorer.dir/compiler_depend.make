# Empty compiler generated dependencies file for protection_explorer.
# This may be replaced when dependencies are built.
