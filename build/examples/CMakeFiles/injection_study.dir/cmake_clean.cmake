file(REMOVE_RECURSE
  "CMakeFiles/injection_study.dir/injection_study.cpp.o"
  "CMakeFiles/injection_study.dir/injection_study.cpp.o.d"
  "injection_study"
  "injection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
