# Empty compiler generated dependencies file for injection_study.
# This may be replaced when dependencies are built.
