# Empty compiler generated dependencies file for chip_ser.
# This may be replaced when dependencies are built.
