file(REMOVE_RECURSE
  "CMakeFiles/chip_ser.dir/chip_ser.cpp.o"
  "CMakeFiles/chip_ser.dir/chip_ser.cpp.o.d"
  "chip_ser"
  "chip_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
