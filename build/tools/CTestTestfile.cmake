# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_cli_l1 "/root/repo/build/tools/mbavf" "--workload=histogram" "--modes=4")
set_tests_properties(tool_cli_l1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cli_vgpr "/root/repo/build/tools/mbavf" "--workload=histogram" "--structure=vgpr" "--scheme=secded" "--style=intra" "--modes=4")
set_tests_properties(tool_cli_vgpr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cli_help "/root/repo/build/tools/mbavf" "--help")
set_tests_properties(tool_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
