file(REMOVE_RECURSE
  "CMakeFiles/mbavf_cli.dir/mbavf_cli.cc.o"
  "CMakeFiles/mbavf_cli.dir/mbavf_cli.cc.o.d"
  "mbavf"
  "mbavf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
