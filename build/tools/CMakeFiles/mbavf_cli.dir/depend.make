# Empty dependencies file for mbavf_cli.
# This may be replaced when dependencies are built.
