# Empty compiler generated dependencies file for mbavf_mttf.
# This may be replaced when dependencies are built.
