file(REMOVE_RECURSE
  "CMakeFiles/mbavf_mttf.dir/mttf.cc.o"
  "CMakeFiles/mbavf_mttf.dir/mttf.cc.o.d"
  "libmbavf_mttf.a"
  "libmbavf_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
