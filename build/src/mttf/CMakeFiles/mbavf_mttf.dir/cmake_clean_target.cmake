file(REMOVE_RECURSE
  "libmbavf_mttf.a"
)
