# Empty dependencies file for mbavf_trace.
# This may be replaced when dependencies are built.
