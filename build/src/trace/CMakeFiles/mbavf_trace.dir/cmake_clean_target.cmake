file(REMOVE_RECURSE
  "libmbavf_trace.a"
)
