file(REMOVE_RECURSE
  "CMakeFiles/mbavf_trace.dir/dataflow.cc.o"
  "CMakeFiles/mbavf_trace.dir/dataflow.cc.o.d"
  "libmbavf_trace.a"
  "libmbavf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
