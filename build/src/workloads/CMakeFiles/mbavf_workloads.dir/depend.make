# Empty dependencies file for mbavf_workloads.
# This may be replaced when dependencies are built.
