file(REMOVE_RECURSE
  "libmbavf_workloads.a"
)
