
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ace_runner.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/ace_runner.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/ace_runner.cc.o.d"
  "/root/repo/src/workloads/appsdk_dense.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/appsdk_dense.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/appsdk_dense.cc.o.d"
  "/root/repo/src/workloads/appsdk_scan.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/appsdk_scan.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/appsdk_scan.cc.o.d"
  "/root/repo/src/workloads/mantevo.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/mantevo.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/mantevo.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/rodinia.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/rodinia.cc.o.d"
  "/root/repo/src/workloads/rodinia_extra.cc" "src/workloads/CMakeFiles/mbavf_workloads.dir/rodinia_extra.cc.o" "gcc" "src/workloads/CMakeFiles/mbavf_workloads.dir/rodinia_extra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbavf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbavf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mbavf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mbavf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mbavf_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
