file(REMOVE_RECURSE
  "CMakeFiles/mbavf_workloads.dir/ace_runner.cc.o"
  "CMakeFiles/mbavf_workloads.dir/ace_runner.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/appsdk_dense.cc.o"
  "CMakeFiles/mbavf_workloads.dir/appsdk_dense.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/appsdk_scan.cc.o"
  "CMakeFiles/mbavf_workloads.dir/appsdk_scan.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/mantevo.cc.o"
  "CMakeFiles/mbavf_workloads.dir/mantevo.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/registry.cc.o"
  "CMakeFiles/mbavf_workloads.dir/registry.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/rodinia.cc.o"
  "CMakeFiles/mbavf_workloads.dir/rodinia.cc.o.d"
  "CMakeFiles/mbavf_workloads.dir/rodinia_extra.cc.o"
  "CMakeFiles/mbavf_workloads.dir/rodinia_extra.cc.o.d"
  "libmbavf_workloads.a"
  "libmbavf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
