
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fault_mode.cc" "src/core/CMakeFiles/mbavf_core.dir/fault_mode.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/fault_mode.cc.o.d"
  "/root/repo/src/core/fault_rates.cc" "src/core/CMakeFiles/mbavf_core.dir/fault_rates.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/fault_rates.cc.o.d"
  "/root/repo/src/core/layout.cc" "src/core/CMakeFiles/mbavf_core.dir/layout.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/layout.cc.o.d"
  "/root/repo/src/core/lifetime.cc" "src/core/CMakeFiles/mbavf_core.dir/lifetime.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/lifetime.cc.o.d"
  "/root/repo/src/core/lifetime_builder.cc" "src/core/CMakeFiles/mbavf_core.dir/lifetime_builder.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/lifetime_builder.cc.o.d"
  "/root/repo/src/core/lifetime_io.cc" "src/core/CMakeFiles/mbavf_core.dir/lifetime_io.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/lifetime_io.cc.o.d"
  "/root/repo/src/core/mbavf.cc" "src/core/CMakeFiles/mbavf_core.dir/mbavf.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/mbavf.cc.o.d"
  "/root/repo/src/core/protection.cc" "src/core/CMakeFiles/mbavf_core.dir/protection.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/protection.cc.o.d"
  "/root/repo/src/core/ser.cc" "src/core/CMakeFiles/mbavf_core.dir/ser.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/ser.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/mbavf_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/mbavf_core.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbavf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
