# Empty dependencies file for mbavf_core.
# This may be replaced when dependencies are built.
