file(REMOVE_RECURSE
  "libmbavf_core.a"
)
