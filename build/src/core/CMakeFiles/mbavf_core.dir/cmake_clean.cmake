file(REMOVE_RECURSE
  "CMakeFiles/mbavf_core.dir/fault_mode.cc.o"
  "CMakeFiles/mbavf_core.dir/fault_mode.cc.o.d"
  "CMakeFiles/mbavf_core.dir/fault_rates.cc.o"
  "CMakeFiles/mbavf_core.dir/fault_rates.cc.o.d"
  "CMakeFiles/mbavf_core.dir/layout.cc.o"
  "CMakeFiles/mbavf_core.dir/layout.cc.o.d"
  "CMakeFiles/mbavf_core.dir/lifetime.cc.o"
  "CMakeFiles/mbavf_core.dir/lifetime.cc.o.d"
  "CMakeFiles/mbavf_core.dir/lifetime_builder.cc.o"
  "CMakeFiles/mbavf_core.dir/lifetime_builder.cc.o.d"
  "CMakeFiles/mbavf_core.dir/lifetime_io.cc.o"
  "CMakeFiles/mbavf_core.dir/lifetime_io.cc.o.d"
  "CMakeFiles/mbavf_core.dir/mbavf.cc.o"
  "CMakeFiles/mbavf_core.dir/mbavf.cc.o.d"
  "CMakeFiles/mbavf_core.dir/protection.cc.o"
  "CMakeFiles/mbavf_core.dir/protection.cc.o.d"
  "CMakeFiles/mbavf_core.dir/ser.cc.o"
  "CMakeFiles/mbavf_core.dir/ser.cc.o.d"
  "CMakeFiles/mbavf_core.dir/sweep.cc.o"
  "CMakeFiles/mbavf_core.dir/sweep.cc.o.d"
  "libmbavf_core.a"
  "libmbavf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
