# Empty dependencies file for mbavf_common.
# This may be replaced when dependencies are built.
