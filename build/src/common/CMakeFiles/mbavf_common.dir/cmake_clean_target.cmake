file(REMOVE_RECURSE
  "libmbavf_common.a"
)
