file(REMOVE_RECURSE
  "CMakeFiles/mbavf_common.dir/args.cc.o"
  "CMakeFiles/mbavf_common.dir/args.cc.o.d"
  "CMakeFiles/mbavf_common.dir/interval_set.cc.o"
  "CMakeFiles/mbavf_common.dir/interval_set.cc.o.d"
  "CMakeFiles/mbavf_common.dir/table.cc.o"
  "CMakeFiles/mbavf_common.dir/table.cc.o.d"
  "libmbavf_common.a"
  "libmbavf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
