file(REMOVE_RECURSE
  "libmbavf_mem.a"
)
