# Empty dependencies file for mbavf_mem.
# This may be replaced when dependencies are built.
