file(REMOVE_RECURSE
  "CMakeFiles/mbavf_mem.dir/cache.cc.o"
  "CMakeFiles/mbavf_mem.dir/cache.cc.o.d"
  "CMakeFiles/mbavf_mem.dir/cache_probe.cc.o"
  "CMakeFiles/mbavf_mem.dir/cache_probe.cc.o.d"
  "CMakeFiles/mbavf_mem.dir/memory.cc.o"
  "CMakeFiles/mbavf_mem.dir/memory.cc.o.d"
  "CMakeFiles/mbavf_mem.dir/ref_index.cc.o"
  "CMakeFiles/mbavf_mem.dir/ref_index.cc.o.d"
  "libmbavf_mem.a"
  "libmbavf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
