file(REMOVE_RECURSE
  "libmbavf_inject.a"
)
