file(REMOVE_RECURSE
  "CMakeFiles/mbavf_inject.dir/campaign.cc.o"
  "CMakeFiles/mbavf_inject.dir/campaign.cc.o.d"
  "CMakeFiles/mbavf_inject.dir/interference.cc.o"
  "CMakeFiles/mbavf_inject.dir/interference.cc.o.d"
  "libmbavf_inject.a"
  "libmbavf_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
