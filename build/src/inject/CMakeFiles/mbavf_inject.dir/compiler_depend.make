# Empty compiler generated dependencies file for mbavf_inject.
# This may be replaced when dependencies are built.
