file(REMOVE_RECURSE
  "CMakeFiles/mbavf_gpu.dir/gpu.cc.o"
  "CMakeFiles/mbavf_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/mbavf_gpu.dir/regfile.cc.o"
  "CMakeFiles/mbavf_gpu.dir/regfile.cc.o.d"
  "CMakeFiles/mbavf_gpu.dir/wave.cc.o"
  "CMakeFiles/mbavf_gpu.dir/wave.cc.o.d"
  "libmbavf_gpu.a"
  "libmbavf_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbavf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
