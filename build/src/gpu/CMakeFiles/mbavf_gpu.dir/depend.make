# Empty dependencies file for mbavf_gpu.
# This may be replaced when dependencies are built.
