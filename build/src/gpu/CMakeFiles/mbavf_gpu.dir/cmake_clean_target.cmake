file(REMOVE_RECURSE
  "libmbavf_gpu.a"
)
